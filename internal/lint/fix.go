package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"

	"wise/internal/lint/cfg"
)

// TextEdit replaces the source range [Pos, End) with NewText. Positions are
// token.Pos values from the module's FileSet.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is one machine-applicable resolution of a finding, applied by
// wise-lint -fix. Fixes are only attached when the rewrite is provably
// behavior-preserving (see LINTING.md, "-fix"); everything else stays a
// human's job.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// FixResult reports what ApplyFixes did to one file.
type FixResult struct {
	File    string
	Applied int      // edits written
	Skipped []string // findings that blocked the file, as rendered strings
}

// ApplyFixes applies the suggested fixes of findings, one file at a time,
// writing through the provided write function (the CLI passes an atomic
// writer). A file is only rewritten when every finding in it carries a fix:
// mixing mechanical rewrites into a file that still needs human attention
// would produce a half-fixed file that looks done. Fixes are applied in
// descending source order so earlier offsets stay valid; overlapping edits
// in one file are an error. Applying is idempotent — a fixed file yields no
// findings, so a second run makes no edits.
func ApplyFixes(fset *token.FileSet, findings []Finding, write func(path string, data []byte) error) ([]FixResult, error) {
	byFile := make(map[string][]Finding)
	var files []string
	for _, f := range findings {
		if _, ok := byFile[f.File]; !ok {
			files = append(files, f.File)
		}
		byFile[f.File] = append(byFile[f.File], f)
	}
	sort.Strings(files)
	var out []FixResult
	for _, path := range files {
		res := FixResult{File: path}
		var edits []TextEdit
		for _, f := range byFile[path] {
			if f.Fix == nil {
				res.Skipped = append(res.Skipped, f.String())
				continue
			}
			edits = append(edits, f.Fix.Edits...)
		}
		if len(res.Skipped) > 0 {
			res.Skipped = append(res.Skipped, fmt.Sprintf("%s: not written: %d finding(s) have no mechanical fix", path, len(res.Skipped)))
			out = append(out, res)
			continue
		}
		if len(edits) == 0 {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return out, err
		}
		patched, n, err := applyEdits(fset, path, data, edits)
		if err != nil {
			return out, err
		}
		if err := write(path, patched); err != nil {
			return out, err
		}
		res.Applied = n
		out = append(out, res)
	}
	return out, nil
}

// applyEdits patches one file's bytes. Edits are deduplicated (two findings
// may suggest the identical edit), sorted descending, and checked for
// overlap.
func applyEdits(fset *token.FileSet, path string, data []byte, edits []TextEdit) ([]byte, int, error) {
	type span struct {
		start, end int
		text       string
	}
	seen := make(map[span]bool)
	var spans []span
	for _, e := range edits {
		ps, pe := fset.Position(e.Pos), fset.Position(e.End)
		if ps.Filename != path || pe.Filename != path {
			return nil, 0, fmt.Errorf("lint: edit for %s targets %s", path, ps.Filename)
		}
		s := span{start: ps.Offset, end: pe.Offset, text: e.NewText}
		if s.start < 0 || s.end < s.start || s.end > len(data) {
			return nil, 0, fmt.Errorf("lint: edit out of range in %s", path)
		}
		if seen[s] {
			continue
		}
		seen[s] = true
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start > spans[j].start })
	for i := 1; i < len(spans); i++ {
		if spans[i].end > spans[i-1].start {
			return nil, 0, fmt.Errorf("lint: overlapping fixes in %s at offset %d", path, spans[i].end)
		}
	}
	for _, s := range spans {
		data = append(data[:s.start], append([]byte(s.text), data[s.end:]...)...)
	}
	return data, len(spans), nil
}

// preallocFix builds the capacity-hint rewrite for an append-in-loop finding
// when the hint is provable: the append target is a plain local declared in
// this unit as `var x []T` or `x := []T{}` outside any loop, and the
// innermost loop around the append ranges over a side-effect-free expression
// Y — then the declaration becomes `x := make([]T, 0, len(Y))`. Anything
// less certain gets no fix.
func preallocFix(pass *Pass, unit ast.Node, call *ast.CallExpr) *SuggestedFix {
	g := cfg.FuncGraph(unit)
	body := unitBody(unit)
	if g == nil || body == nil {
		return nil
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	tobj := pass.Pkg.Info.Uses[target]
	if tobj == nil {
		return nil
	}
	rng := innermostRange(body, call.Pos())
	if rng == nil || !sideEffectFree(rng.X) {
		return nil
	}
	// The range loop must enclose the append, and each iteration must be
	// able to append at most... (one append per element is the common shape;
	// len(Y) is a hint, not a bound, so any append pattern is safe).
	hint := "len(" + exprString(pass, rng.X) + ")"

	// Find the declaration of the target in this unit, outside any loop.
	var fix *SuggestedFix
	ast.Inspect(body, func(n ast.Node) bool {
		if fix != nil {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			if s != unit {
				return false
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || len(gd.Specs) != 1 {
				return true
			}
			vs, ok := gd.Specs[0].(*ast.ValueSpec)
			if !ok || len(vs.Names) != 1 || len(vs.Values) != 0 || vs.Type == nil {
				return true
			}
			if vs.Names[0].Name != target.Name || pass.Pkg.Info.Defs[vs.Names[0]] != tobj {
				return true
			}
			if !isSliceType(vs.Type) || g.LoopDepthAt(s.Pos()) != 0 {
				return true
			}
			typ := exprString(pass, vs.Type)
			fix = &SuggestedFix{
				Message: fmt.Sprintf("declare %s with capacity %s", target.Name, hint),
				Edits: []TextEdit{{
					Pos:     s.Pos(),
					End:     s.End(),
					NewText: fmt.Sprintf("%s := make(%s, 0, %s)", target.Name, typ, hint),
				}},
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok || id.Name != target.Name || pass.Pkg.Info.Defs[id] != tobj {
				return true
			}
			cl, ok := s.Rhs[0].(*ast.CompositeLit)
			if !ok || len(cl.Elts) != 0 || !isSliceType(cl.Type) || g.LoopDepthAt(s.Pos()) != 0 {
				return true
			}
			typ := exprString(pass, cl.Type)
			fix = &SuggestedFix{
				Message: fmt.Sprintf("declare %s with capacity %s", target.Name, hint),
				Edits: []TextEdit{{
					Pos:     s.Rhs[0].Pos(),
					End:     s.Rhs[0].End(),
					NewText: fmt.Sprintf("make(%s, 0, %s)", typ, hint),
				}},
			}
		}
		return true
	})
	return fix
}

func isSliceType(e ast.Expr) bool {
	at, ok := e.(*ast.ArrayType)
	return ok && at.Len == nil
}

// innermostRange returns the smallest RangeStmt containing pos.
func innermostRange(body *ast.BlockStmt, pos token.Pos) *ast.RangeStmt {
	var best *ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok && rng.Pos() <= pos && pos < rng.End() {
			if best == nil || (rng.End()-rng.Pos()) < (best.End()-best.Pos()) {
				best = rng
			}
		}
		return true
	})
	return best
}

// sideEffectFree reports whether evaluating e twice is safe: identifiers,
// selectors, and parenthesized forms of those.
func sideEffectFree(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return sideEffectFree(x.X)
	}
	return false
}
