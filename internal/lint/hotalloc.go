package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"wise/internal/lint/cfg"
)

// HotAllocAnalyzer guards the hot-path packages against per-iteration heap
// traffic: the SpMV kernels, the cost model, the measurement harness, and
// feature extraction dominate WISE's prediction overhead (PAPER.md §6), so a
// make/new inside a loop, a closure minted per iteration, fmt boxing, or an
// append with no preallocated capacity is a real throughput regression, not a
// style nit. The analyzer is CFG-driven: loop membership comes from natural
// loops (internal/lint/cfg), so allocations on break/return/panic paths —
// which cannot reach the back edge — are never flagged, and every message
// carries the loop-nesting depth. Allocations whose value is retained beyond
// the iteration (returned, stored, appended, captured) are result building,
// not garbage, and are exempt from the hoist check; appends are instead held
// to the prealloc-capacity rule.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags per-iteration allocations, closures, fmt boxing, and append-without-prealloc in loops of the hot packages (kernels, costmodel, perf, features, serve, bench)",
	Run:  runHotAlloc,
}

// hotScopes are the package names under internal/ whose loops are
// performance-critical.
var hotScopes = map[string]bool{
	"kernels": true, "costmodel": true, "perf": true, "features": true,
	"serve": true,
	// bench: an allocation inside a Measure loop is attributed to the code
	// under test (allocs/op comes from MemStats deltas), so the harness
	// itself must not allocate per iteration.
	"bench": true,
}

func inHotScope(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) && hotScopes[segs[i+1]] {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) {
	if !inHotScope(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			evidence := preallocEvidence(pass, fd.Body)
			for _, unit := range functionUnits(fd) {
				checkHotUnit(pass, unit, evidence)
			}
		}
	}
}

// functionUnits returns the function declaration plus every nested function
// literal, each analyzed against its own control-flow graph.
func functionUnits(fd *ast.FuncDecl) []ast.Node {
	units := []ast.Node{fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, lit)
		}
		return true
	})
	return units
}

// unitBody returns the body of a function unit.
func unitBody(unit ast.Node) *ast.BlockStmt {
	switch u := unit.(type) {
	case *ast.FuncDecl:
		return u.Body
	case *ast.FuncLit:
		return u.Body
	}
	return nil
}

// preallocEvidence records, for the whole declaration subtree, the targets
// that were sized before use: `x := make([]T, n)` / `make([]T, 0, c)`
// assignments and composite-literal fields initialized with a sized make
// (`Foo{Names: make([]string, 0, c)}` assigned to v yields "v.Names").
// Evidence is keyed by the printed expression so selector targets work.
func preallocEvidence(pass *Pass, body *ast.BlockStmt) map[string]bool {
	ev := make(map[string]bool)
	record := func(target ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(call.Args) < 2 {
			return
		}
		if len(call.Args) == 2 {
			if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
				return // make([]T, 0) is explicitly no capacity
			}
		}
		ev[exprString(pass, target)] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				record(s.Lhs[i], rhs)
				if cl, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok {
							field := &ast.SelectorExpr{X: s.Lhs[i], Sel: key}
							record(field, kv.Value)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range s.Values {
				if i < len(s.Names) {
					record(s.Names[i], v)
				}
			}
		}
		return true
	})
	return ev
}

func checkHotUnit(pass *Pass, unit ast.Node, evidence map[string]bool) {
	body := unitBody(unit)
	if body == nil {
		return
	}
	g := cfg.FuncGraph(unit)
	if g == nil {
		return
	}
	info := pass.Pkg.Info
	retained := cfg.Retained(unit, info)

	// Function literals that are go/defer targets run once per spawn, not
	// per iteration of the spawn loop in any hot sense; skip those.
	spawned := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch s := n.(type) {
		case *ast.GoStmt:
			call = s.Call
		case *ast.DeferStmt:
			call = s.Call
		default:
			return true
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			spawned[lit] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			if depth := g.LoopDepthAt(s.Pos()); depth >= 1 && !spawned[s] {
				pass.Reportf(s.Pos(),
					"function literal created inside loop (depth %d) allocates a closure every iteration; hoist it out of the loop", depth)
			}
			return false // the literal's own body is a separate unit
		case *ast.AssignStmt:
			checkAllocAssign(pass, g, info, s, retained)
		case *ast.CallExpr:
			checkAppendAndBoxing(pass, g, info, s, evidence, unit)
		}
		return true
	})
}

// checkAllocAssign flags `x := make(...)` / `new(...)` / `&T{...}` / slice or
// map literals inside a loop when x is a plain local that is not retained
// beyond the iteration — scratch space that should be hoisted and reused.
func checkAllocAssign(pass *Pass, g *cfg.Graph, info *types.Info, s *ast.AssignStmt, retained map[types.Object]bool) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		what := allocKind(info, rhs)
		if what == "" {
			continue
		}
		depth := g.LoopDepthAt(s.Pos())
		if depth < 1 {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || retained[obj] {
			continue // result building, not per-iteration garbage
		}
		pass.Reportf(s.Pos(),
			"%s allocates %q every loop iteration (depth %d); hoist the buffer out of the loop and reuse it", what, id.Name, depth)
	}
}

// allocKind classifies an expression as a heap allocation worth hoisting.
func allocKind(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b != nil {
				return id.Name
			}
		}
	case *ast.UnaryExpr:
		if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
			return "&composite literal"
		}
	case *ast.CompositeLit:
		if tv, ok := info.Types[x]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				return "composite literal"
			}
		}
	}
	return ""
}

// fmtAllocFuncs are the fmt constructors that box every argument and
// allocate their result.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// checkAppendAndBoxing flags fmt boxing calls and append-without-prealloc
// inside loops.
func checkAppendAndBoxing(pass *Pass, g *cfg.Graph, info *types.Info, call *ast.CallExpr, evidence map[string]bool, unit ast.Node) {
	depth := g.LoopDepthAt(call.Pos())
	if depth < 1 {
		return
	}
	if fn := resolvedFunc(info, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
		pass.Reportf(call.Pos(),
			"fmt.%s inside loop (depth %d) allocates and boxes its arguments every iteration; precompute the strings or use strconv", fn.Name(), depth)
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b == nil {
		return
	}
	// The capacity rule only makes sense for a settable target that could
	// have been sized before the loop; clone idioms like
	// append([]T(nil), src...) are deliberate per-iteration copies.
	if !sideEffectFree(call.Args[0]) {
		return
	}
	target := exprString(pass, call.Args[0])
	if evidence[target] {
		return
	}
	fix := preallocFix(pass, unit, call)
	if fix != nil {
		pass.ReportfFix(call.Pos(), fix,
			"append to %q inside loop (depth %d) without preallocated capacity; size the slice before the loop", target, depth)
	} else {
		pass.Reportf(call.Pos(),
			"append to %q inside loop (depth %d) without preallocated capacity; size the slice before the loop", target, depth)
	}
}
