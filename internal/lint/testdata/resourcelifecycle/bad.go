// Fixture: true positives for the resourcelifecycle analyzer.
//
//lint:path wise/internal/serve/lintfixture
package lintfixture

import (
	"context"
	"errors"
	"os"
	"time"
)

func work(ctx context.Context) error { return ctx.Err() }

// badTickerNeverStopped leaks the ticker: nothing ever calls Stop.
func badTickerNeverStopped(done chan struct{}) {
	tick := time.NewTicker(time.Second) // want resourcelifecycle
	for {
		select {
		case <-tick.C:
		case <-done:
			return
		}
	}
}

// badCancelDiscarded throws the CancelFunc away at the binding site.
func badCancelDiscarded(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want resourcelifecycle
	return ctx
}

// badCancelOnePath calls cancel on the fast path only; the slow path leaks
// the context's resources until the parent dies.
func badCancelOnePath(parent context.Context, fast bool) error {
	ctx, cancel := context.WithCancel(parent) // want resourcelifecycle
	if fast {
		cancel()
		return nil
	}
	return work(ctx)
}

// badFileLeakedOnBranch closes the file on the success path but leaks the
// descriptor when validation fails.
func badFileLeakedOnBranch(path string, limit int64) error {
	f, err := os.Open(path) // want resourcelifecycle
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err // leak: f is open and nothing closes it
	}
	if st.Size() > limit {
		return errors.New("too large") // leak here too
	}
	return f.Close()
}

// badTimerNeverStopped acquires a timer and returns without stopping it.
func badTimerNeverStopped(d time.Duration, ch chan struct{}) {
	t := time.NewTimer(d) // want resourcelifecycle
	select {
	case <-t.C:
	case <-ch:
	}
}

// poller spawns a long-lived goroutine from Start with no way to stop it.
type poller struct {
	interval time.Duration
}

func (p *poller) Start() { // want resourcelifecycle
	go func() {
		for {
			time.Sleep(p.interval)
		}
	}()
}
