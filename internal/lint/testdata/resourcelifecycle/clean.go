// Fixture: true negatives for the resourcelifecycle analyzer — defers,
// per-path releases, ownership transfers, and a joined Start/Stop pair.
//
//lint:path wise/internal/serve/lintfixture
package lintfixture

import (
	"context"
	"io"
	"os"
	"sync"
	"time"
)

// cleanDeferStop is the canonical shape: defer directly after acquiring.
func cleanDeferStop(done chan struct{}) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-done:
			return
		}
	}
}

// cleanDeferCancel releases via defer of the CancelFunc itself.
func cleanDeferCancel(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	return work(ctx)
}

// cleanDeferClosure releases inside a deferred closure.
func cleanDeferClosure(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		f.Close()
	}()
	_, err = f.Stat()
	return err
}

// cleanEveryPath releases explicitly on each branch instead of deferring.
func cleanEveryPath(parent context.Context, fast bool) error {
	ctx, cancel := context.WithCancel(parent)
	if fast {
		cancel()
		return nil
	}
	err := work(ctx)
	cancel()
	return err
}

// cleanReturnClose releases as the return expression.
func cleanReturnClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// cleanOwnershipReturned transfers the open file to the caller.
func cleanOwnershipReturned(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

type fileHolder struct {
	f *os.File
}

// cleanOwnershipStored transfers the file into a struct the caller releases.
func cleanOwnershipStored(path string) (*fileHolder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &fileHolder{f: f}, nil
}

// consumeFile is a module-internal callee that takes over the file: the
// interprocedural check sees the Close in its body.
func consumeFile(f *os.File) error {
	defer f.Close()
	_, err := io.Copy(io.Discard, f)
	return err
}

// cleanOwnershipPassed hands the file to a callee that closes it; the
// interprocedural check walks into consumeFile rather than assuming every
// module-internal call keeps the caller responsible.
func cleanOwnershipPassed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = consumeFile(f)
	return err
}

// worker pairs Start with a Stop that joins via cancel + WaitGroup.
type worker struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func (w *worker) Start(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	w.cancel = cancel
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Second):
			}
		}
	}()
}

func (w *worker) Stop() {
	w.cancel()
	w.wg.Wait()
}

// cleanSuppressed documents the rationale escape hatch: the timer is owned by
// the select that always drains it before return, a shape the path analysis
// cannot prove.
func cleanSuppressed(d time.Duration, ch chan struct{}) {
	//lint:ignore resourcelifecycle the timer fires exactly once and the select below always drains C before returning
	t := time.NewTimer(d)
	<-t.C
	close(ch)
}
