// Fixture: true positives for the goroutinesafety analyzer.
package lintfixture

import "sync"

func badLoopCapture(xs []int) {
	var wg sync.WaitGroup
	wg.Add(len(xs))
	for i := range xs {
		go func() {
			defer wg.Done()
			use(i) // want goroutinesafety
		}()
	}
	wg.Wait()
}

func badAddInside() {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		go func(w int) {
			wg.Add(1) // want goroutinesafety
			defer wg.Done()
			use(w)
		}(w)
	}
	wg.Wait()
}

func badSharedWrite(out []int) {
	var wg sync.WaitGroup
	wg.Add(2)
	k := 0
	for w := 0; w < 2; w++ {
		go func(w int) {
			defer wg.Done()
			out[k] = w // want goroutinesafety
		}(w)
	}
	wg.Wait()
}

func badMapWrite(m map[int]int) {
	var wg sync.WaitGroup
	wg.Add(2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			defer wg.Done()
			m[w] = w // want goroutinesafety
		}(w)
	}
	wg.Wait()
}

func use(int) {}
