// Fixture: code the goroutinesafety analyzer must accept — the worker-pool
// patterns the repo's parallel paths use.
package lintfixture

import (
	"sync"
	"sync/atomic"
)

// goodPartitioned writes disjoint slots indexed by a goroutine parameter.
func goodPartitioned(out []int) {
	var wg sync.WaitGroup
	workers := 4
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			out[w] = w * w
		}(w)
	}
	wg.Wait()
}

// goodDynamic is the self-scheduling loop: the claimed unit index is
// goroutine-local, so slot writes are disjoint.
func goodDynamic(out []int) {
	var next int64
	var wg sync.WaitGroup
	workers := 4
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				u := int(atomic.AddInt64(&next, 1)) - 1
				if u >= len(out) {
					return
				}
				out[u] = u
			}
		}()
	}
	wg.Wait()
}

func suppressedSharedWrite(out []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	k := 0
	go func() {
		defer wg.Done()
		//lint:ignore goroutinesafety single goroutine, no concurrent writer
		out[k] = 1
	}()
	wg.Wait()
}
