// Fixture: true positives for the determinism analyzer. Anchored under
// internal/bench to prove the harness package is inside the deterministic
// scope (the suite's shape must be a function of the preset seed alone).
//
//lint:path wise/internal/bench/lintfixture
package lintfixture

import (
	"math/rand"
	"time"
)

func badGlobalIntn() int {
	return rand.Intn(10) // want determinism
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want determinism
}

func badGlobalFloat() float64 {
	return rand.Float64() // want determinism
}

func badTimeSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want determinism
}

func badWallClockValue() int64 {
	return time.Now().UnixNano() // want determinism
}
