// Fixture: code the determinism analyzer must accept.
package lintfixture

import (
	"math/rand"
	"time"
)

func goodSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func goodThreadedRNG(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

func goodZipf(rng *rand.Rand) uint64 {
	z := rand.NewZipf(rng, 1.5, 1, 100)
	return z.Uint64()
}

// goodDuration is the allowlisted obs/progress wall-clock pattern: time.Now
// feeding time.Since never converts the clock to a number.
func goodDuration() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

func suppressedGlobal() int {
	//lint:ignore determinism fixture exercises the suppression machinery
	return rand.Intn(3)
}
