// Fixture: code the floateq analyzer must accept.
package lintfixture

func goodInts(a, b int) bool { return a == b }

func goodOrdering(a, b float64) bool { return a < b }

// approxEqual is an approved epsilon helper (name matches the helper
// pattern); exact comparisons inside it are the fast path and NaN guard.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// withinTol is likewise exempt by name.
func withinTol(x, tol float64) bool { return x == x && x <= tol }

func goodConstFold() bool {
	return 1.0 == 2.0 // constants fold at compile time; nothing to flag
}

func suppressedExact(a, b float64) bool {
	//lint:ignore floateq bit-exact comparison is this helper's contract
	return a == b
}
