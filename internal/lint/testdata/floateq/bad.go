// Fixture: true positives for the floateq analyzer.
package lintfixture

func badEqual(a, b float64) bool {
	return a == b // want floateq
}

func badNotEqual(a, b float32) bool {
	return a != b // want floateq
}

func badAgainstZero(x float64) bool {
	return x == 0 // want floateq
}

func badMixedConst(x float64) bool {
	return 1.5 == x // want floateq
}
