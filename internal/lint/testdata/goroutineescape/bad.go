// Fixture: true positives for the goroutineescape analyzer.
package lintfixture

type tally struct{ n int }

func (t *tally) add() { t.n++ }

func bump(p *int) { *p = *p + 1 }

// badSharedCounter writes n on both sides of the go statement before the
// channel receive orders anything.
func badSharedCounter() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n++
		close(done)
	}()
	n++ // want goroutineescape
	<-done
	return n
}

// badInterprocWrite spawns a module function that writes through its pointer
// parameter while the spawner keeps writing the same variable.
func badInterprocWrite() int {
	v := 0
	go bump(&v)
	v = 2 // want goroutineescape
	return v
}

// badRecvWrite races a method's receiver write against a direct field write.
func badRecvWrite() int {
	t := &tally{}
	done := make(chan struct{})
	go func() {
		t.add()
		close(done)
	}()
	t.n = 5 // want goroutineescape
	<-done
	return t.n
}
