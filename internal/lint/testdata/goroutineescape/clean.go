// Fixture: code the goroutineescape analyzer must accept — every
// happens-before pattern the repo's parallel paths rely on.
package lintfixture

import "sync"

// goodWaitThenWrite orders the second write after the goroutine via Wait.
func goodWaitThenWrite() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		n++
		wg.Done()
	}()
	wg.Wait()
	n++
	return n
}

// goodChannelHandoff orders the writes through a channel receive.
func goodChannelHandoff() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 1
		close(done)
	}()
	<-done
	n++
	return n
}

// goodCommonLock guards both sides with the same mutex.
func goodCommonLock() int {
	var mu sync.Mutex
	n := 0
	done := make(chan struct{})
	go func() {
		mu.Lock()
		n++
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	n++
	mu.Unlock()
	<-done
	return n
}

// goodPartitionedWrite splits the slice by index range; the goroutine's
// index is goroutine-local, the spawner's writes are index-disjoint.
func goodPartitionedWrite(out []int) {
	done := make(chan struct{})
	go func() {
		for i := 0; i < len(out)/2; i++ {
			out[i] = i
		}
		close(done)
	}()
	for j := len(out) / 2; j < len(out); j++ {
		out[j] = j
	}
	<-done
}

// statWrite deliberately lets the probe goroutine race a best-effort counter.
func statWrite() int {
	hits := 0
	go func() { hits++ }()
	//lint:ignore goroutineescape best-effort instrumentation counter; last write wins is acceptable here
	hits = 1
	return hits
}
