// Fixture: code the spanhygiene analyzer must accept.
package lintfixture

import "wise/internal/obs"

func goodDefer() {
	span := obs.Begin("ok")
	defer span.End()
}

// goodSequential is the CLI pattern: one variable reused across stages with
// an End between reassignments.
func goodSequential() {
	span := obs.Begin("stage-a")
	span.End()
	span = obs.Begin("stage-b")
	span.End()
}

func goodChildDefer(parent *obs.Span) {
	c := parent.Child("child")
	defer c.End()
}

func goodChainedDefer() {
	defer obs.Begin("inline").End()
}

// goodEscapes hands ownership to the caller; local analysis stops here.
func goodEscapes() *obs.Span {
	return obs.Begin("escapes")
}

func suppressedLeak() {
	//lint:ignore spanhygiene fixture exercises the suppression machinery
	s := obs.Begin("suppressed")
	_ = s
}
