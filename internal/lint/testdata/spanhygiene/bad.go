// Fixture: true positives for the spanhygiene analyzer.
package lintfixture

import "wise/internal/obs"

func badLeaked() {
	span := obs.Begin("leaked") // want spanhygiene
	_ = span
}

func badDiscarded() {
	obs.Begin("dropped") // want spanhygiene
}

func badChildLeaked(parent *obs.Span) {
	c := parent.Child("child") // want spanhygiene
	_ = c
}

func badBlankSpan() {
	_ = obs.Begin("blank") // want spanhygiene
}
