// Fixture: true negatives for the hotalloc analyzer — hoisted buffers,
// preallocated appends, retained results, terminating paths, spawned
// goroutines, and a working suppression.
package lintfixture

import (
	"fmt"
	"sync"
)

func cleanHoisted(n int) int {
	buf := make([]int, 8)
	total := 0
	for i := 0; i < n; i++ {
		buf[0] = i
		total += buf[0]
	}
	return total
}

func cleanPreallocAppend(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}

func cleanRetainedRows(xs []int) [][]int {
	out := make([][]int, 0, len(xs))
	for _, x := range xs {
		row := []int{x} // retained: appended into the result
		out = append(out, row)
	}
	return out
}

func cleanPanicPath(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			detail := make([]byte, 16)
			detail[0] = 'n'
			panic(string(detail))
		}
		s += x
	}
	return s
}

func cleanSpawned(xs []int) {
	var wg sync.WaitGroup
	for range xs {
		wg.Add(1)
		go func() { wg.Done() }()
	}
	wg.Wait()
}

func cleanSuppressed(xs []int) string {
	s := ""
	for _, x := range xs {
		//lint:ignore hotalloc fixture exercises a suppression with a rationale
		s += fmt.Sprint(x)
	}
	return s
}
