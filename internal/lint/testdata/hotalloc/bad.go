// Fixture: true positives for the hotalloc analyzer. Anchored under
// internal/bench to prove the harness package is inside the hot scope (an
// allocation in a Measure loop is charged to the code under test).
//
//lint:path wise/internal/bench/lintfixture
package lintfixture

import "fmt"

func badMakeInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, 8) // want hotalloc
		buf[0] = i
		total += buf[0]
	}
	return total
}

func badClosureInLoop(xs []int) int {
	s := 0
	for _, x := range xs {
		double := func() int { return x * 2 } // want hotalloc
		s += double()
	}
	return s
}

func badSprintfInLoop(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("x%d", x)) // want hotalloc
	}
	return out
}

func badAppendNoPrealloc(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x > 0 {
			out = append(out, x) // want hotalloc
		}
	}
	return out
}

func badNestedDepth(grid [][]int) int {
	s := 0
	for _, row := range grid {
		for range row {
			scratch := make(map[int]bool) // want hotalloc
			scratch[s] = true
			s += len(scratch)
		}
	}
	return s
}
