// Fixture: true positives for the indexguard analyzer.
//
//lint:path wise/internal/kernels/lintfixture
package lintfixture

// format mimics a sparse-matrix structure: RowPtr/ColIdx values come from
// parsed input files.
type format struct {
	RowPtr []int64
	ColIdx []int32
	Vals   []float64
}

func badUnguarded(f *format, x, y []float64) {
	for i := 0; i < len(f.RowPtr)-1; i++ {
		for k := f.RowPtr[i]; k < f.RowPtr[i+1]; k++ {
			y[i] += f.Vals[k] * x[f.ColIdx[k]] // want indexguard
		}
	}
}

func badDerivedLocal(f *format, x []float64) float64 {
	var s float64
	for i := 0; i < len(f.RowPtr)-1; i++ {
		start := f.RowPtr[i]
		end := f.RowPtr[i+1]
		for k := start; k < end; k++ {
			c := f.ColIdx[k]
			s += x[c] // want indexguard
		}
	}
	return s
}
