// Fixture: true negatives for the indexguard analyzer — dominating len
// guards, validation helpers, and the format's own construction-coupled
// arrays.
package lintfixture

func cleanLenGuarded(f *format, x, y []float64, cols int) {
	if len(x) < cols {
		panic("x shorter than the matrix columns")
	}
	for i := 0; i < len(f.RowPtr)-1; i++ {
		for k := f.RowPtr[i]; k < f.RowPtr[i+1]; k++ {
			y[i] += f.Vals[k] * x[f.ColIdx[k]]
		}
	}
}

func checkBounds(f *format, n int) {
	for _, c := range f.ColIdx {
		if int(c) >= n {
			panic("column index out of range")
		}
	}
}

func cleanHelperValidated(f *format, x []float64) float64 {
	checkBounds(f, len(x))
	var s float64
	for i := 0; i < len(f.RowPtr)-1; i++ {
		for k := f.RowPtr[i]; k < f.RowPtr[i+1]; k++ {
			s += x[f.ColIdx[k]]
		}
	}
	return s
}

func cleanOwnArrays(f *format) float64 {
	var s float64
	for i := 0; i < len(f.RowPtr)-1; i++ {
		for k := f.RowPtr[i]; k < f.RowPtr[i+1]; k++ {
			s += f.Vals[k] * float64(f.ColIdx[k])
		}
	}
	return s
}
