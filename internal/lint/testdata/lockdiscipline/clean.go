// Fixture: code the lockdiscipline analyzer must accept — the balanced
// locking shapes the repo's serve/obs/ml paths use.
package lintfixture

import "sync"

type counterBox struct {
	mu sync.Mutex
	n  int
}

type gaugeBox struct {
	mu sync.RWMutex
	v  int
}

// cleanDefer is the canonical shape: lock, defer unlock.
func cleanDefer(c *counterBox) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// cleanStraight releases on the single path.
func cleanStraight(c *counterBox) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// cleanBranchBalanced releases on every branch before returning.
func cleanBranchBalanced(c *counterBox, flag bool) int {
	c.mu.Lock()
	if flag {
		v := c.n
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	return 0
}

// cleanLoopLock locks and unlocks inside the loop body — no deferred
// release accumulates.
func cleanLoopLock(c *counterBox, xs []int) int {
	s := 0
	for _, x := range xs {
		c.mu.Lock()
		s += x + c.n
		c.mu.Unlock()
	}
	return s
}

// cleanReadLock pairs RLock with a deferred RUnlock.
func cleanReadLock(g *gaugeBox) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

var (
	cmuA sync.Mutex
	cmuB sync.Mutex
)

// cleanOrderOne and cleanOrderTwo take the two mutexes in the same order —
// a consistent acquisition order is not an inversion.
func cleanOrderOne(c *counterBox) {
	cmuA.Lock()
	cmuB.Lock()
	c.n++
	cmuB.Unlock()
	cmuA.Unlock()
}

func cleanOrderTwo(c *counterBox) {
	cmuA.Lock()
	cmuB.Lock()
	c.n--
	cmuB.Unlock()
	cmuA.Unlock()
}

// cleanSuppressedLeak holds the lock into a panic on the overflow path; the
// process dies with it, so the leak is accepted with a rationale.
func cleanSuppressedLeak(c *counterBox) {
	//lint:ignore lockdiscipline the overflow path panics and the process exits; no later locker exists
	c.mu.Lock()
	c.n++
	if c.n > 1000 {
		panic("counter overflow")
	}
	c.mu.Unlock()
}
