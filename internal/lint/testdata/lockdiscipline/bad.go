// Fixture: true positives for the lockdiscipline analyzer.
package lintfixture

import "sync"

type account struct {
	mu  sync.Mutex
	bal int
}

type gauge struct {
	mu sync.RWMutex
	v  int
}

// badLeak returns on the !ok path with the mutex still held.
func badLeak(a *account, ok bool) int {
	a.mu.Lock() // want lockdiscipline
	if !ok {
		return -1
	}
	v := a.bal
	a.mu.Unlock()
	return v
}

// badLeakFixable leaks on the early return; the single trailing Unlock can be
// hoisted to a defer mechanically (exercised by the -fix golden test).
func badLeakFixable(a *account) {
	a.mu.Lock() // want lockdiscipline
	a.bal++
	if a.bal > 10 {
		return
	}
	a.mu.Unlock()
}

// badDouble locks a mutex it already holds on every path.
func badDouble(a *account) {
	a.mu.Lock()
	a.mu.Lock() // want lockdiscipline
	a.bal++
	a.mu.Unlock()
}

// badUnlock releases a mutex no path ever locked.
func badUnlock(a *account) {
	a.bal++
	a.mu.Unlock() // want lockdiscipline
}

// badDeferLoop registers one deferred unlock per iteration; every iteration
// after the first self-deadlocks.
func badDeferLoop(a *account, xs []int) int {
	s := 0
	for _, x := range xs {
		a.mu.Lock()
		defer a.mu.Unlock() // want lockdiscipline
		s += x + a.bal
	}
	return s
}

// badRecursiveRLock takes the read lock while already holding the write lock.
func badRecursiveRLock(g *gauge) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mu.RLock() // want lockdiscipline
	v := g.v
	g.mu.RUnlock()
	return v
}

type regset struct {
	mu sync.Mutex
	n  int
}

// count copies the receiver — and its mutex — on every call.
func (r regset) count() int { // want lockdiscipline
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// badCopyAssign copies a mutex-bearing value out of a pointer.
func badCopyAssign(r *regset) {
	local := *r // want lockdiscipline
	_ = local
}

// badRangeCopy copies each mutex-bearing element into the range variable.
func badRangeCopy(rs []regset) int {
	n := 0
	for _, r := range rs { // want lockdiscipline
		n += r.n
	}
	return n
}

var (
	muA sync.Mutex
	muB sync.Mutex
)

// badOrderAB and badOrderBA acquire the same two mutexes in opposite orders;
// run concurrently they deadlock.
func badOrderAB(a *account) {
	muA.Lock()
	muB.Lock() // want lockdiscipline
	a.bal++
	muB.Unlock()
	muA.Unlock()
}

func badOrderBA(a *account) {
	muB.Lock()
	muA.Lock() // want lockdiscipline
	a.bal--
	muA.Unlock()
	muB.Unlock()
}
