// Fixture: code the errdrop analyzer must accept.
package lintfixture

import (
	"fmt"
	"os"
	"strings"
)

func goodHandled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// goodExplicitBlank discards visibly; the assignment documents intent.
func goodExplicitBlank() {
	_ = mayFail()
}

func goodStdStreams() {
	fmt.Println("to stdout")
	fmt.Fprintln(os.Stderr, "best-effort diagnostic")
}

func goodMemWriters() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", 1)
	b.WriteString("tail")
	return b.String()
}

// goodDeferredClose is out of scope by design: the deferred-Close idiom on
// read paths is fine.
func goodDeferredClose(f *os.File) {
	defer f.Close()
}

func suppressedDrop() {
	//lint:ignore errdrop best-effort cleanup; failure is benign here
	mayFail()
}
