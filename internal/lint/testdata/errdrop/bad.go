// Fixture: true positives for the errdrop analyzer.
package lintfixture

import (
	"fmt"
	"os"
)

func mayFail() error { return nil }

func mayFailWithValue() (int, error) { return 0, nil }

func badDrop() {
	mayFail() // want errdrop
}

func badDropTuple() {
	mayFailWithValue() // want errdrop
}

func badFprintfFile(f *os.File) {
	fmt.Fprintf(f, "data\n") // want errdrop
}

func badClose(f *os.File) {
	f.Close() // want errdrop
}
