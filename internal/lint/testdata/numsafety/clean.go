// Fixture: true negatives for the numsafety analyzer — guarded narrowing,
// tolerance comparisons, and screened training inputs.
//
//lint:path wise/internal/ml/lintfixture
package lintfixture

import (
	"errors"
	"math"
)

// cleanGuardedInline bounds the value against math.MaxInt32 in the same
// function before narrowing.
func cleanGuardedInline(nnz int) (int32, error) {
	if nnz > math.MaxInt32 {
		return 0, errors.New("nnz exceeds int32 range")
	}
	return int32(nnz), nil
}

// fitsInt32 is a bounds-checking helper; its name is the guard evidence.
func fitsInt32(v int64) bool {
	return v >= math.MinInt32 && v <= math.MaxInt32
}

// cleanGuardedHelper narrows only after a named bounds check.
func cleanGuardedHelper(row, stride int64) (int32, error) {
	if !fitsInt32(row * stride) {
		return 0, errors.New("index exceeds int32 range")
	}
	return int32(row * stride), nil
}

// cleanConstant narrows a value the type-checker already proved in range.
func cleanConstant() int32 {
	const dim = 4096
	return int32(dim)
}

// cleanTolerance compares the accumulator against an epsilon, not exactly.
func cleanTolerance(vals []float64) bool {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return math.Abs(sum) < 1e-12
}

type cleanModel struct{ thresholds []float64 }

// FitScreened rejects non-finite features before training on them.
func FitScreened(x [][]float64, y []int) (*cleanModel, error) {
	for _, row := range x {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, errors.New("non-finite feature")
			}
		}
	}
	m := &cleanModel{}
	for _, row := range x {
		m.thresholds = append(m.thresholds, row...)
	}
	return m, nil
}

// validateInputs screens a dataset for non-finite values.
func validateInputs(x [][]float64) error {
	for _, row := range x {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return errors.New("non-finite feature")
			}
		}
	}
	return nil
}

// FitViaValidate delegates the screen to a same-package callee one level
// deep — the shape ml.Dataset.Validate uses.
func FitViaValidate(x [][]float64, y []int) (*cleanModel, error) {
	if err := validateInputs(x); err != nil {
		return nil, err
	}
	m := &cleanModel{thresholds: x[0]}
	return m, nil
}

// cleanSuppressed documents the rationale escape hatch for a conversion whose
// bound is structural rather than checked.
func cleanSuppressed(perm []int32, newPos int) int32 {
	//lint:ignore numsafety newPos indexes perm, whose int32 elements could not address a slice longer than MaxInt32
	return int32(newPos)
}
