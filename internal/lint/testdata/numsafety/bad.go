// Fixture: true positives for the numsafety analyzer.
//
//lint:path wise/internal/ml/lintfixture
package lintfixture

// badTruncateNNZ narrows an entry count with no bound check anywhere in the
// function: past 2^31 entries the conversion silently wraps negative.
func badTruncateNNZ(nnz int) int32 {
	return int32(nnz) // want numsafety
}

// badTruncateArith narrows index arithmetic.
func badTruncateArith(row, stride int64) int32 {
	return int32(row * stride) // want numsafety
}

// badTruncateLen narrows a length.
func badTruncateLen(colIdx []int64) int32 {
	return int32(len(colIdx)) // want numsafety
}

// badAccumulatorEq sums rounding error and then tests it for exact zero.
func badAccumulatorEq(vals []float64) bool {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum == 0 // want numsafety
}

// badAccumulatorNeq is the != spelling of the same mistake.
func badAccumulatorNeq(vals []float64) bool {
	total := 0.0
	for _, v := range vals {
		total = total - v
	}
	return total != 1.0 // want numsafety
}

type badModel struct{ thresholds []float64 }

// FitRaw trains on float features without ever screening for NaN/Inf.
func FitRaw(x [][]float64, y []int) *badModel { // want numsafety
	m := &badModel{}
	for _, row := range x {
		for _, v := range row {
			m.thresholds = append(m.thresholds, v)
		}
	}
	return m
}
