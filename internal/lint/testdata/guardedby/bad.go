// Fixture: true positives for the guardedby analyzer.
package lintfixture

import "sync"

type store struct {
	mu sync.Mutex
	// guarded by mu
	items map[string]int
}

// badReadUnlocked reads a guarded field with no lock held.
func badReadUnlocked(s *store) int {
	return s.items["k"] // want guardedby
}

// badWriteUnlocked replaces a guarded field with no lock held.
func badWriteUnlocked(s *store) {
	s.items = map[string]int{} // want guardedby
}

// badUnlockTooEarly releases before the last access.
func badUnlockTooEarly(s *store) int {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	return n + s.items["k"] // want guardedby
}

type cache struct {
	rw sync.RWMutex
	// guarded by rw
	vals []int
}

// badWriteUnderRLock mutates while holding only the read lock.
func badWriteUnderRLock(c *cache) {
	c.rw.RLock()
	c.vals = append(c.vals, 1) // want guardedby
	c.rw.RUnlock()
}

type broken struct {
	// guarded by lock
	n int // want guardedby
}

func useBroken(b *broken) int { return b.n }
