// Fixture: code the guardedby analyzer must accept.
package lintfixture

import "sync"

type cleanStore struct {
	mu sync.Mutex
	// guarded by mu
	n int
}

// inc accesses the guarded field under its lock.
func (s *cleanStore) inc() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// incLocked relies on every caller holding mu — the interprocedural
// entry-held fixpoint proves it.
func (s *cleanStore) incLocked() { s.n++ }

func (s *cleanStore) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.incLocked()
}

// newCleanStore publishes only after initialization; the composite literal
// does not access the field through a selector.
func newCleanStore() *cleanStore {
	s := &cleanStore{n: 1}
	//lint:ignore guardedby construction precedes publication; no other goroutine can see the store yet
	s.n = 2
	return s
}

var regMu sync.Mutex

type registry struct {
	// guarded by regMu
	entries []string
}

// addEntry guards the field with the package-level mutex the annotation
// names.
func addEntry(r *registry, e string) {
	regMu.Lock()
	r.entries = append(r.entries, e)
	regMu.Unlock()
}

type cleanCache struct {
	rw sync.RWMutex
	// guarded by rw
	vals []int
}

// get reads under the read lock.
func (c *cleanCache) get(i int) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.vals[i]
}

// put writes under the write lock.
func (c *cleanCache) put(v int) {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.vals = append(c.vals, v)
}
