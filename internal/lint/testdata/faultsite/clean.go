// Fixture: true negatives for the faultsite analyzer — a literal, registered,
// unique, test-armed site.
package faultfixture

import "wise/internal/resilience/faultinject"

func cleanRegisteredArmed() error {
	return faultinject.Hit("resilience.atomic.rename")
}
