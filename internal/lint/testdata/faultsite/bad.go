// Fixture: true positives for the faultsite analyzer. The sites used here
// resolve against the real faultinject.Registry of the module.
package faultfixture

import "wise/internal/resilience/faultinject"

func badNonLiteral(site string) error {
	return faultinject.Hit(site) // want faultsite
}

func badUnregistered() error {
	return faultinject.Hit("faultfixture.unknown.site") // want faultsite
}

func badUnarmed() error {
	// Registered, but no test in this fixture package arms it.
	return faultinject.Hit("perf.label.interrupt") // want faultsite
}

func firstUse() error {
	return faultinject.Hit("resilience.atomic.write")
}

func badDuplicate() error {
	return faultinject.Hit("resilience.atomic.write") // want faultsite
}
