// Fixture test file: the analyzer scans _test.go text for fault-spec strings
// (the loader never type-checks this file). The specs below arm the sites the
// clean fixture uses and reference one site that is not in the registry.
package faultfixture

const armedSpecs = "resilience.atomic.write:error,resilience.atomic.rename:shortwrite"

const staleSpec = "faultfixture.gone.site:panic" // want faultsite
