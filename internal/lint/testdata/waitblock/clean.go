// Fixture: code the waitblock analyzer must accept.
package lintfixture

import "sync"

// goodWaitUnlocked releases the mutex before parking on Wait.
func goodWaitUnlocked(mu *sync.Mutex, wg *sync.WaitGroup, n *int) {
	mu.Lock()
	*n = *n + 1
	mu.Unlock()
	wg.Wait()
}

// goodNonBlockingSelect polls under the lock — the default case means the
// select never parks.
func goodNonBlockingSelect(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

type condBox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

// await parks on Cond.Wait, which releases the lock while parked — exempt.
func (b *condBox) await() {
	b.mu.Lock()
	for !b.ready {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// goodAddBeforeGo performs the Add on the spawning side.
func goodAddBeforeGo(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- 1
	}()
	wg.Wait()
}

// handoffLocked sends on a channel its caller guarantees is buffered; the
// send cannot park, so the hazard is accepted with a rationale.
func handoffLocked(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	//lint:ignore waitblock ch is buffered by construction (see the caller); the send cannot park
	ch <- 1
}
