// Fixture: true positives for the waitblock analyzer.
package lintfixture

import "sync"

// badWaitWhileLocked parks on Wait with the mutex held.
func badWaitWhileLocked(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait() // want waitblock
	mu.Unlock()
}

// badRecvWhileLocked blocks on a bare receive with the mutex held.
func badRecvWhileLocked(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch // want waitblock
}

// badSelectWhileLocked parks on a select with no default.
func badSelectWhileLocked(mu *sync.Mutex, a, b chan int) int {
	mu.Lock()
	defer mu.Unlock()
	select { // want waitblock
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// badRangeWhileLocked drains a channel with the mutex held the whole time.
func badRangeWhileLocked(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	s := 0
	for v := range ch { // want waitblock
		s += v
	}
	return s
}

func receive(ch chan int) int { return <-ch }

// badCallBlocksWhileLocked calls a module function whose synchronous closure
// blocks — the callgraph's MayBlock bit sees through the call.
func badCallBlocksWhileLocked(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return receive(ch) // want waitblock
}

func addAndServe(wg *sync.WaitGroup) {
	wg.Add(1)
	defer wg.Done()
}

// badAddViaCall moves wg.Add into the goroutine through a module call; Add
// can run after Wait has already returned.
func badAddViaCall(wg *sync.WaitGroup) {
	go addAndServe(wg) // want waitblock
	wg.Wait()
}

// badAddViaLit does the same through a spawned literal.
func badAddViaLit(wg *sync.WaitGroup) {
	go func() {
		addAndServe(wg) // want waitblock
	}()
	wg.Wait()
}
