// Fixture: true positives for the atomicwrite analyzer.
package lintfixture

import "os"

func badWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want atomicwrite
}

func badCreate(path string) error {
	f, err := os.Create(path) // want atomicwrite
	if err != nil {
		return err
	}
	return f.Close()
}
