// Fixture: code the atomicwrite analyzer must accept.
package lintfixture

import (
	"io"
	"os"

	"wise/internal/resilience"
)

// goodAtomic stages, fsyncs, and renames through the resilience layer.
func goodAtomic(path string, data []byte) error {
	return resilience.AtomicWriteFile(path, data, 0o644)
}

// goodStreaming commits an incrementally written artifact atomically.
func goodStreaming(path string, src io.Reader) error {
	f, err := resilience.CreateAtomic(path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if _, err := io.Copy(f, src); err != nil {
		return err
	}
	return f.Commit()
}

// goodRead: reading is out of scope.
func goodRead(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// goodTemp: a temp file is the first half of the atomic idiom itself.
func goodTemp(dir string) error {
	f, err := os.CreateTemp(dir, "stage-*")
	if err != nil {
		return err
	}
	return f.Close()
}

// suppressedCreate: live streaming destinations that cannot be
// staged-and-renamed opt out with a rationale.
func suppressedCreate(path string) error {
	//lint:ignore atomicwrite the profiler streams into this handle for the process lifetime
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
