// Fixture: true negatives for the ctxpropagate analyzer — propagated and
// derived contexts, done-channel receives, channel-range loops, and loops
// that never call into the pipeline.
package lintfixture

import "context"

func cleanPassesCtx(ctx context.Context, n int) int {
	return step(ctx, n)
}

func cleanLoopChecksErr(ctx context.Context, xs []int) (int, error) {
	s := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		s += stage(x)
	}
	return s, nil
}

func cleanDerivedCtx(ctx context.Context, xs []int) int {
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	s := 0
	for _, x := range xs {
		select {
		case <-ictx.Done():
			return s
		default:
		}
		s += stage(x)
	}
	return s
}

func cleanDoneChannel(ctx context.Context, xs []int) int {
	done := ctx.Done()
	s := 0
	for _, x := range xs {
		select {
		case <-done:
			return s
		default:
		}
		s += stage(x)
	}
	return s
}

func cleanCtxThroughCallee(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += step(ctx, x) // callee owns cancellation
	}
	return s
}

func cleanChanRange(ctx context.Context, ch <-chan int) int {
	s := 0
	for x := range ch { // drained by the sender; receive is the signal
		s += stage(x)
	}
	return s
}

func cleanLocalLoop(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x * x // no pipeline calls; nothing to cancel
	}
	return s
}
