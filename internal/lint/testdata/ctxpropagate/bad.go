// Fixture: true positives for the ctxpropagate analyzer.
//
//lint:path wise/internal/serve/lintfixture
package lintfixture

import "context"

// step is a module-declared, context-accepting pipeline stage.
func step(ctx context.Context, i int) int { return i }

// stage is a module-declared, context-blind pipeline stage.
func stage(i int) int { return i }

func badDiscardsCtx(ctx context.Context, n int) int {
	return step(context.Background(), n) // want ctxpropagate
}

func badTODOCtx(ctx context.Context, n int) int {
	return step(context.TODO(), n) // want ctxpropagate
}

func badNilCtx(ctx context.Context, n int) int {
	return step(nil, n) // want ctxpropagate
}

func badUncancellableLoop(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs { // want ctxpropagate
		s += stage(x)
	}
	return s
}
