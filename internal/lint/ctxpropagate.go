package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wise/internal/lint/cfg"
)

// CtxPropagateAnalyzer enforces the cancellation contract PR 3 introduced: a
// function that accepts a context.Context must hand it to every callee that
// can take one (accepting ctx and then calling context-blind or
// context.Background() variants silently breaks checkpoint-then-exit), and —
// in the labeling/CV packages (internal/perf, internal/ml), where loop
// bodies measure kernels or train folds for seconds at a time — every loop
// that calls into the module must either check ctx.Err()/ctx.Done() or pass
// a context into a callee. Derived contexts and done-channels are recognized
// through dataflow (cfg.Derived), so `ictx, cancel := context.WithCancel(ctx)`
// and `done := ctx.Done()` both satisfy the check.
var CtxPropagateAnalyzer = &Analyzer{
	Name:        "ctxpropagate",
	ModuleFacts: true,
	Doc:  "flags context-aware functions that drop ctx when calling ctx-accepting callees, and uncancellable hot loops in the labeling/CV packages",
	Run:  runCtxPropagate,
}

func runCtxPropagate(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxUnit(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && ctxParam(pass.Pkg.Info, lit.Type) != "" {
					checkCtxUnit(pass, lit)
				}
				return true
			})
		}
	}
}

// ctxParam returns the name of the first context.Context parameter of a
// function type, or "" when there is none (or it is blank).
func ctxParam(info *types.Info, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		if !isContextType(info.Types[field.Type].Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxUnit checks one function (declaration or literal) that declares a
// ctx parameter. Nested literals with their own ctx parameter are skipped —
// they are units of their own; literals that merely capture ctx are walked
// inline.
func checkCtxUnit(pass *Pass, unit ast.Node) {
	info := pass.Pkg.Info
	var ft *ast.FuncType
	var body *ast.BlockStmt
	switch u := unit.(type) {
	case *ast.FuncDecl:
		ft, body = u.Type, u.Body
	case *ast.FuncLit:
		ft, body = u.Type, u.Body
	}
	ctxName := ctxParam(info, ft)
	if ctxName == "" || body == nil {
		return
	}
	derived := cfg.Derived(unit, info, func(e ast.Expr) bool {
		return isContextType(info.Types[e].Type)
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			if ctxParam(info, s.Type) != "" {
				return false // its own unit
			}
		case *ast.CallExpr:
			checkCtxCall(pass, s, ctxName)
		}
		return true
	})
	if inCancellationScope(pass.Pkg.Path) {
		checkLoopCancellation(pass, unit, body, derived)
	}
}

// checkCtxCall flags calls to ctx-accepting callees that are not given a
// context.
func checkCtxCall(pass *Pass, call *ast.CallExpr, ctxName string) {
	info := pass.Pkg.Info
	sig := calleeSignature(info, call)
	if sig == nil {
		return
	}
	ctxAt := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			ctxAt = i
			break
		}
	}
	if ctxAt < 0 {
		return
	}
	name := "callee"
	if id := calleeFunc(call); id != nil {
		name = id.Name
	}
	for _, arg := range call.Args {
		if !isContextType(info.Types[arg].Type) {
			continue
		}
		// A context is passed; the only violation left is explicitly
		// discarding the in-scope one.
		if bg := backgroundCall(info, arg); bg != "" {
			fix := &SuggestedFix{
				Message: fmt.Sprintf("pass %s instead of context.%s()", ctxName, bg),
				Edits:   []TextEdit{{Pos: arg.Pos(), End: arg.End(), NewText: ctxName}},
			}
			pass.ReportfFix(arg.Pos(), fix,
				"call to %s discards the in-scope %s by passing context.%s()", name, ctxName, bg)
		}
		return
	}
	// No context argument at all.
	var fix *SuggestedFix
	if ctxAt == 0 && !sig.Variadic() && len(call.Args) == sig.Params().Len()-1 {
		fix = &SuggestedFix{
			Message: fmt.Sprintf("pass %s as the first argument", ctxName),
			Edits:   []TextEdit{{Pos: call.Lparen + 1, End: call.Lparen + 1, NewText: ctxName + ", "}},
		}
	}
	if fix != nil {
		pass.ReportfFix(call.Pos(), fix,
			"%s accepts a context.Context but the in-scope %s is not passed", name, ctxName)
	} else {
		pass.Reportf(call.Pos(),
			"%s accepts a context.Context but the in-scope %s is not passed", name, ctxName)
	}
}

// backgroundCall reports whether e is context.Background() or context.TODO(),
// returning the function name.
func backgroundCall(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := resolvedFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO") {
		return fn.Name()
	}
	return ""
}

func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// cancellationScopes are the packages whose loops run long enough that an
// uncancellable iteration defeats checkpoint-then-exit (RESILIENCE.md).
var cancellationScopes = map[string]bool{"ml": true, "perf": true, "serve": true}

func inCancellationScope(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) && cancellationScopes[segs[i+1]] {
			return true
		}
	}
	return false
}

// checkLoopCancellation flags loops in the unit's own body (not in nested
// literals — worker closures are paced by their scheduler) that call into
// the module without any cancellation signal: no ctx.Err()/ctx.Done() call,
// no context passed to a callee, and no receive from a derived done-channel.
func checkLoopCancellation(pass *Pass, unit ast.Node, body *ast.BlockStmt, derived map[types.Object]bool) {
	info := pass.Pkg.Info
	g := cfg.FuncGraph(unit)
	if g == nil {
		return
	}
	modPrefix := pass.Mod.ModPath
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if t := info.Types[s.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					return true // drained by the sender; receive is the signal
				}
			}
			checkOneLoop(pass, g, s, s.Body, derived, modPrefix)
		case *ast.ForStmt:
			checkOneLoop(pass, g, s, s.Body, derived, modPrefix)
		}
		return true
	})
}

func checkOneLoop(pass *Pass, g *cfg.Graph, loop ast.Stmt, body *ast.BlockStmt, derived map[types.Object]bool, modPrefix string) {
	info := pass.Pkg.Info
	callsModule := false
	cancellable := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Err" || sel.Sel.Name == "Done") &&
				isCtxValue(info, derived, sel.X) {
				cancellable = true
			}
			for _, arg := range s.Args {
				if isCtxValue(info, derived, arg) {
					cancellable = true // callee owns cancellation
				}
			}
			if fn := resolvedFunc(info, s); fn != nil && fn.Pkg() != nil {
				p := fn.Pkg().Path()
				if p == modPrefix || strings.HasPrefix(p, modPrefix+"/") {
					callsModule = true
				}
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && isDerivedIdent(info, derived, s.X) {
				cancellable = true // receive from a done-channel
			}
		}
		return true
	})
	if callsModule && !cancellable {
		depth := g.LoopDepthAt(body.Pos())
		if depth < 1 {
			depth = 1
		}
		pass.Reportf(loop.Pos(),
			"loop calls into the pipeline but never checks ctx.Err()/ctx.Done() and passes no context (depth %d); long iterations defeat checkpoint-then-exit", depth)
	}
}

// isCtxValue reports whether e is a context-typed expression or an
// identifier the dataflow marked as context-derived.
func isCtxValue(info *types.Info, derived map[types.Object]bool, e ast.Expr) bool {
	if isContextType(info.Types[e].Type) {
		return true
	}
	return isDerivedIdent(info, derived, e)
}

func isDerivedIdent(info *types.Info, derived map[types.Object]bool, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	return obj != nil && derived[obj]
}
