package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"wise/internal/resilience"
)

// The on-disk fact cache (LINTING.md "v4 incremental engine"). Each entry
// holds the post-suppression findings of one analyzer tier over one package,
// keyed by a content hash that covers everything the tier's result can
// depend on:
//
//   - local tier (package-scoped analyzers): the package's non-test sources
//     and, transitively, the sources of its module-internal imports — a
//     change in a dependency can change type information and therefore
//     findings, so dependency keys chain into the package key;
//   - module tier (ModuleFacts analyzers): additionally the whole-module
//     state — every package's source key, every _test.go file (faultsite
//     reads raw test files), and go.mod — because interprocedural facts
//     (entry-held lock sets, call-graph summaries, the fault-site registry)
//     flow from *callers*, which a per-package dependency cone cannot see.
//
// Keys also cover the schema version, the Go toolchain version, and the
// names of the analyzers in the tier, so a subset run can never serve
// another subset's findings. Any unreadable, truncated, corrupt, or
// mismatched entry is silently a miss: the engine re-analyzes, never
// crashes, and never reports a stale finding.

// cacheSchema versions the entry format AND the analyzers' semantics: bump
// it whenever an analyzer's rules, the suppression machinery, or the entry
// layout change, so stale caches invalidate wholesale. A variable (not a
// const) so tests can prove the schema-bump-means-full-miss property.
var cacheSchema = 1

// factCache is a handle on one cache directory. A nil *factCache is a valid
// always-miss, never-store cache, which is how the engine runs when -cache
// is off.
type factCache struct {
	dir string // <cache root>/v<schema>
}

// openFactCache prepares the versioned subdirectory under root. Errors are
// returned (not swallowed): an unusable -cache DIR is a usage error the CLI
// must surface, not a silent slow run.
func openFactCache(root string) (*factCache, error) {
	if root == "" {
		return nil, nil
	}
	dir := filepath.Join(root, fmt.Sprintf("v%d", cacheSchema))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lint: creating cache dir: %w", err)
	}
	return &factCache{dir: dir}, nil
}

// cacheEntry is the JSON payload of one tier×package entry. Findings carry
// module-root-relative paths so a cache persisted in CI is valid across
// checkouts at different absolute paths; Key doubles as a corruption check
// (an entry renamed or partially copied onto the wrong key is a miss).
type cacheEntry struct {
	Schema   int       `json:"schema"`
	Key      string    `json:"key"`
	Findings []Finding `json:"findings"`
}

func (c *factCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load returns the cached findings for key (with paths rehydrated against
// root) and whether the lookup hit. Every failure mode — missing file,
// truncated JSON, schema drift, key mismatch — is a miss.
func (c *factCache) load(root, key string) ([]Finding, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != cacheSchema || e.Key != key {
		return nil, false
	}
	out := make([]Finding, len(e.Findings))
	for i, f := range e.Findings {
		f.File = filepath.Join(root, filepath.FromSlash(f.File))
		out[i] = f
	}
	return out, true
}

// store persists one tier's findings under key. Best-effort: a write failure
// (disk full, permissions) costs only future cache hits, so it is not
// propagated. The write is atomic via internal/resilience — a crash mid-store
// leaves either no entry or a complete one, never a truncated file for the
// next run to trip on (and load treats truncation as a miss anyway).
func (c *factCache) store(root, key string, findings []Finding) {
	if c == nil {
		return
	}
	rel := make([]Finding, len(findings))
	for i, f := range findings {
		if r, err := filepath.Rel(root, f.File); err == nil {
			f.File = filepath.ToSlash(r)
		}
		f.Fix = nil // fixes hold AST positions; never meaningful across runs
		rel[i] = f
	}
	e := cacheEntry{Schema: cacheSchema, Key: key, Findings: rel}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	//lint:ignore errdrop cache writes are best-effort: a failed store costs a future hit, not correctness
	resilience.AtomicWriteFile(c.path(key), data, 0o644)
}

// --- key derivation ---

// pkgMeta is the scan-phase view of one package directory: enough to derive
// cache keys and the dependency DAG without parsing function bodies or
// type-checking anything.
type pkgMeta struct {
	Path      string   // import path
	Dir       string   // absolute directory
	SrcFiles  []string // non-test .go files, sorted base names
	TestFiles []string // _test.go files, sorted base names
	Imports   []string // module-internal imports, sorted

	srcHash  string   // content hash of SrcFiles
	testHash string   // content hash of TestFiles
	depKey   string   // srcHash chained with all transitive deps' depKeys
	deps     []string // == Imports (alias for scheduling)
}

func hashStrings(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		_, _ = h.Write([]byte(p)) // hash.Hash.Write never fails
		_, _ = h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashFiles hashes file names and contents (in the given sorted order) so
// renames, additions, and edits all change the hash.
func hashFiles(dir string, names []string) (string, error) {
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		_, _ = fmt.Fprintf(h, "%s\x00%d\x00", name, len(data)) // hash.Hash.Write never fails
		_, _ = h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// tierNames renders an analyzer tier as a stable key component.
func tierNames(tier []*Analyzer) string {
	names := make([]string, len(tier))
	for i, a := range tier {
		names[i] = a.Name
	}
	sort.Strings(names)
	return hashStrings(names...)
}

// computeDepKeys derives every package's depKey — its source hash chained
// with the depKeys of its module-internal imports — walking the DAG in the
// given topological order. This is the "content hash of the package plus the
// hashes of its dependencies' facts" from LINTING.md: an edit anywhere in a
// package's import cone changes its key and re-runs it and its reverse
// dependencies, and nothing else.
func computeDepKeys(metas map[string]*pkgMeta, order []string) {
	for _, path := range order {
		m := metas[path]
		parts := []string{"dep", m.Path, m.srcHash}
		for _, dep := range m.Imports {
			if d := metas[dep]; d != nil {
				parts = append(parts, dep, d.depKey)
			}
		}
		m.depKey = hashStrings(parts...)
	}
}

// localKey keys the package-scoped tier: toolchain + schema + tier + the
// package's dependency-cone content.
func localKey(m *pkgMeta, tier string) string {
	return hashStrings("local", fmt.Sprint(cacheSchema), runtime.Version(), tier, m.depKey)
}

// moduleKey keys the ModuleFacts tier: everything localKey covers plus the
// module-wide state hash (all package cones, all test files, go.mod).
func moduleKey(m *pkgMeta, tier, moduleState string) string {
	return hashStrings("module", fmt.Sprint(cacheSchema), runtime.Version(), tier, m.depKey, moduleState)
}

// moduleStateHash folds the whole module into one hash for the module tier:
// any source or test-file change anywhere invalidates every module-tier
// entry, which is exactly the soundness bar interprocedural facts demand.
func moduleStateHash(metas map[string]*pkgMeta, gomodHash string) string {
	paths := make([]string, 0, len(metas))
	for p := range metas {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	parts := []string{"modstate", gomodHash}
	for _, p := range paths {
		m := metas[p]
		parts = append(parts, p, m.depKey, m.testHash)
	}
	return hashStrings(parts...)
}
