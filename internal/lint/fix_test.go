package lint

import (
	"os"
	"path/filepath"
	"testing"
)

const fixSampleSrc = `package fixsample

import "context"

func consume(ctx context.Context, n int) int { return n }

func Collect(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

func Drive(ctx context.Context, n int) int {
	return consume(context.Background(), n)
}
`

// fixSampleGolden is fixSampleSrc after wise-lint -fix: the append target
// gains a capacity hint and the discarded context is threaded through.
const fixSampleGolden = `package fixsample

import "context"

func consume(ctx context.Context, n int) int { return n }

func Collect(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

func Drive(ctx context.Context, n int) int {
	return consume(ctx, n)
}
`

// TestApplyFixesGolden applies the suggested fixes of a fixture package and
// compares the rewritten file against the golden output, then re-runs the
// analyzers on the fixed file to prove the rewrite is idempotent: zero
// findings, zero further writes.
func TestApplyFixesGolden(t *testing.T) {
	m := repoModule(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "sample.go")
	if err := os.WriteFile(path, []byte(fixSampleSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{HotAllocAnalyzer, CtxPropagateAnalyzer}

	// The fixture uses a costmodel-scoped path so hotalloc runs but the
	// perf/ml loop-cancellation check does not.
	pkg, err := m.LoadExtraDir(dir, "wise/internal/costmodel/fixsample1")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackage(m, pkg, analyzers)
	if len(findings) != 2 {
		t.Fatalf("want 2 findings before fixing, got %v", findings)
	}
	for _, f := range findings {
		if f.Fix == nil {
			t.Fatalf("finding has no fix: %s", f)
		}
	}
	write := func(p string, data []byte) error { return os.WriteFile(p, data, 0o644) }
	results, err := ApplyFixes(m.Fset, findings, write)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Applied == 0 || len(results[0].Skipped) != 0 {
		t.Fatalf("unexpected fix results: %+v", results)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != fixSampleGolden {
		t.Fatalf("fixed file mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, fixSampleGolden)
	}

	// Idempotency: the fixed file yields no findings, so a second -fix pass
	// writes nothing.
	pkg2, err := m.LoadExtraDir(dir, "wise/internal/costmodel/fixsample2")
	if err != nil {
		t.Fatal(err)
	}
	again := RunPackage(m, pkg2, analyzers)
	if len(again) != 0 {
		t.Fatalf("fixed file still has findings: %v", again)
	}
	wrote := false
	if _, err := ApplyFixes(m.Fset, again, func(string, []byte) error { wrote = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if wrote {
		t.Fatal("second fix pass wrote a file")
	}
}

const fixRefuseSrc = `package refuse

func Scratch(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		buf := make([]int, 4)
		buf[0] = i
		t += buf[0]
	}
	return t
}

func Gather(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
`

// TestApplyFixesRefusesMixedFile checks that a file containing any finding
// without a mechanical fix is left untouched even when other findings in it
// are fixable.
func TestApplyFixesRefusesMixedFile(t *testing.T) {
	m := repoModule(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "refuse.go")
	if err := os.WriteFile(path, []byte(fixRefuseSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := m.LoadExtraDir(dir, "wise/internal/costmodel/refusesample")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackage(m, pkg, []*Analyzer{HotAllocAnalyzer})
	var fixable, unfixable int
	for _, f := range findings {
		if f.Fix != nil {
			fixable++
		} else {
			unfixable++
		}
	}
	if fixable == 0 || unfixable == 0 {
		t.Fatalf("fixture needs both fixable and unfixable findings, got %v", findings)
	}
	results, err := ApplyFixes(m.Fset, findings, func(string, []byte) error {
		t.Fatal("write called for a refused file")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Applied != 0 || len(results[0].Skipped) == 0 {
		t.Fatalf("unexpected fix results: %+v", results)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != fixRefuseSrc {
		t.Fatal("refused file was modified")
	}
}
