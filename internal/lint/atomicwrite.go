package lint

import (
	"go/ast"
	"strings"
)

// AtomicWriteAnalyzer protects the crash-consistency invariant of artifact
// persistence (RESILIENCE.md): every file the pipeline writes must go
// through internal/resilience (AtomicWriteFile / CreateAtomic /
// WriteArtifact), so a crash or kill mid-write can never leave a truncated
// model, label, or results file behind. Direct os.WriteFile and os.Create
// calls are flagged everywhere outside internal/resilience, which is the
// one place allowed to touch the filesystem primitives. Genuinely
// streaming destinations that cannot be staged-and-renamed (live pprof
// profiles) carry a //lint:ignore atomicwrite with a rationale.
var AtomicWriteAnalyzer = &Analyzer{
	Name: "atomicwrite",
	Doc:  "flags direct os.WriteFile/os.Create outside internal/resilience; artifacts must be written atomically",
	Run:  runAtomicWrite,
}

// nonAtomicWriters are the os entry points that produce a destination file
// in place. os.CreateTemp is deliberately absent: a temp file is the first
// half of the atomic idiom, not a hazard.
var nonAtomicWriters = map[string]string{
	"WriteFile": "resilience.AtomicWriteFile",
	"Create":    "resilience.CreateAtomic",
}

func runAtomicWrite(pass *Pass) {
	if strings.Contains(pass.Pkg.Path, "internal/resilience") {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			replacement, hazard := nonAtomicWriters[fn.Name()]
			if !hazard {
				return true
			}
			pass.Reportf(call.Pos(),
				"os.%s writes the destination in place; a crash mid-write leaves a corrupt file — use %s (see RESILIENCE.md)",
				fn.Name(), replacement)
			return true
		})
	}
}
