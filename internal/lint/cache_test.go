package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// cacheEntryFiles lists the entry files the engine persisted under the
// versioned cache directory.
func cacheEntryFiles(t *testing.T, cacheDir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(cacheDir, "v*", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no cache entries were written")
	}
	return matches
}

// warmMiniCache runs the engine twice over a fresh mini module and returns
// the module dir, cache dir, and the (fully cached) report bytes.
func warmMiniCache(t *testing.T) (string, string, []byte) {
	t.Helper()
	dir := writeMiniModule(t)
	cacheDir := t.TempDir()
	opts := EngineOptions{Dir: dir, CacheDir: cacheDir, Jobs: 2}
	if _, _, err := RunEngine(All(), opts); err != nil {
		t.Fatal(err)
	}
	warm, stats, err := RunEngine(All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullyCached {
		t.Fatalf("expected a fully cached warm run, got %+v", stats)
	}
	return dir, cacheDir, findingsJSON(t, warm)
}

// TestCacheCorruptEntrySilentlyReanalyzes overwrites one persisted entry
// with garbage: the engine must treat it as a miss, re-analyze, emit the
// identical report, and heal the entry for the next run.
func TestCacheCorruptEntrySilentlyReanalyzes(t *testing.T) {
	dir, cacheDir, want := warmMiniCache(t)
	entries := cacheEntryFiles(t, cacheDir)
	if err := os.WriteFile(entries[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := EngineOptions{Dir: dir, CacheDir: cacheDir, Jobs: 2}
	got, stats, err := RunEngine(All(), opts)
	if err != nil {
		t.Fatalf("a corrupt entry must never surface as an error: %v", err)
	}
	if stats.CacheMisses == 0 {
		t.Error("corrupt entry should register as a miss")
	}
	if !bytes.Equal(findingsJSON(t, got), want) {
		t.Errorf("report changed after cache corruption:\nwant: %s\ngot:  %s", want, findingsJSON(t, got))
	}
	// The re-analysis healed the entry: the next run is fully cached again.
	if _, stats, err = RunEngine(All(), opts); err != nil || !stats.FullyCached {
		t.Errorf("cache did not heal after corruption: stats=%+v err=%v", stats, err)
	}
}

// TestCacheTruncatedEntrySilentlyReanalyzes cuts a valid entry in half —
// the crash-mid-write shape — and expects the same silent re-analysis.
func TestCacheTruncatedEntrySilentlyReanalyzes(t *testing.T) {
	dir, cacheDir, want := warmMiniCache(t)
	entries := cacheEntryFiles(t, cacheDir)
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got, stats, err := RunEngine(All(), EngineOptions{Dir: dir, CacheDir: cacheDir, Jobs: 2})
	if err != nil {
		t.Fatalf("a truncated entry must never surface as an error: %v", err)
	}
	if stats.FullyCached {
		t.Error("truncated entry should have forced a re-analysis")
	}
	if !bytes.Equal(findingsJSON(t, got), want) {
		t.Errorf("report changed after truncation:\nwant: %s\ngot:  %s", want, findingsJSON(t, got))
	}
}

// TestCacheWrongKeyEntryIsMiss swaps two entries' contents: each file now
// deserializes cleanly but declares the other's key, which load must reject.
func TestCacheWrongKeyEntryIsMiss(t *testing.T) {
	dir, cacheDir, want := warmMiniCache(t)
	entries := cacheEntryFiles(t, cacheDir)
	if len(entries) < 2 {
		t.Fatalf("need at least two entries to swap, got %d", len(entries))
	}
	a, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(entries[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[1], a, 0o644); err != nil {
		t.Fatal(err)
	}

	got, stats, err := RunEngine(All(), EngineOptions{Dir: dir, CacheDir: cacheDir, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses < 2 {
		t.Errorf("both swapped entries should miss, got %d misses", stats.CacheMisses)
	}
	if !bytes.Equal(findingsJSON(t, got), want) {
		t.Errorf("report changed after key swap:\nwant: %s\ngot:  %s", want, findingsJSON(t, got))
	}
}

// TestCacheSchemaBumpFullMiss proves the wholesale-invalidation property:
// bumping cacheSchema orphans every existing entry, the next run is fully
// cold, and the report is unchanged.
func TestCacheSchemaBumpFullMiss(t *testing.T) {
	dir, cacheDir, want := warmMiniCache(t)

	cacheSchema++
	defer func() { cacheSchema-- }()

	got, stats, err := RunEngine(All(), EngineOptions{Dir: dir, CacheDir: cacheDir, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 {
		t.Errorf("schema bump must invalidate everything, got %d hits", stats.CacheHits)
	}
	if !bytes.Equal(findingsJSON(t, got), want) {
		t.Errorf("report changed across schema bump:\nwant: %s\ngot:  %s", want, findingsJSON(t, got))
	}
}
