package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"wise/internal/lint/callgraph"
)

// This file is the interprocedural half of the v3 lock analysis: it owns the
// module-wide callgraph, the `// guarded by` annotation registry, the
// entry-held fixpoint (which locks a function's callers provably hold at
// every call site), and the lock-acquisition order graph. Everything is
// built once per Module (or once per fixture package) and shared by the
// lockdiscipline, guardedby, goroutineescape, and waitblock analyzers.

// modAnalysis is the shared interprocedural state.
type modAnalysis struct {
	m    *Module
	pkgs []*Package

	graph     *callgraph.Graph
	pkgByPath map[string]*Package

	// guarded maps an annotated struct field to its guard; badGuards are
	// malformed annotations, reported by the guardedby analyzer.
	guarded   map[*types.Var]guardSpec
	badGuards []badGuard

	// entryHeld[fn] is the lock set (in fn's own frame: receiver-rooted and
	// package-level keys) that every module call site of fn provably holds.
	// Absent means empty. Exported, address-taken, and go-spawned functions
	// are pinned to empty — they can be entered from anywhere.
	entryHeld  map[*types.Func]map[string]heldLock
	entryKnown map[*types.Func]bool

	units map[*Package][]*lockUnit

	orderEdges []orderEdge

	mu    sync.Mutex
	flows map[ast.Node]*unitFlow

	invOnce    sync.Once
	inversions []inversion
}

// guardSpec describes one `// guarded by <lock>` annotation.
type guardSpec struct {
	lock   string // field name on the same struct, or package-level var name
	global bool   // lock is a package-level variable
	owner  string // struct type name, for messages
}

type badGuard struct {
	pos    token.Pos
	file   string
	reason string
}

// orderEdge records "to was acquired while from was held" at pos, in
// type-level lock keys.
type orderEdge struct {
	from, to string
	pos      token.Pos
}

// inversion is one lock-order cycle observation: at pos, `to` is acquired
// while `from` is held, but elsewhere (counter) the opposite order exists.
type inversion struct {
	from, to string
	pos      token.Pos
	counter  token.Pos
}

// analysisFor returns the interprocedural state for the module pkg belongs
// to. Module packages share one lazily-built analysis; fixture packages
// (LoadExtraDir/LoadFixture) get their own, built over module+fixture.
func (m *Module) analysisFor(pkg *Package) *modAnalysis {
	if m.byPath[pkg.Path] == pkg {
		m.analysisOnce.Do(func() {
			m.analysis = buildAnalysis(m, m.Packages)
		})
		return m.analysis
	}
	m.extraMu.Lock()
	defer m.extraMu.Unlock()
	if m.extraAnalyses == nil {
		m.extraAnalyses = make(map[*Package]*modAnalysis)
	}
	if a := m.extraAnalyses[pkg]; a != nil {
		return a
	}
	pkgs := make([]*Package, 0, len(m.Packages)+1)
	pkgs = append(pkgs, m.Packages...)
	pkgs = append(pkgs, pkg)
	a := buildAnalysis(m, pkgs)
	m.extraAnalyses[pkg] = a
	return a
}

func buildAnalysis(m *Module, pkgs []*Package) *modAnalysis {
	a := &modAnalysis{
		m:          m,
		pkgs:       pkgs,
		pkgByPath:  make(map[string]*Package, len(pkgs)),
		guarded:    make(map[*types.Var]guardSpec),
		entryHeld:  make(map[*types.Func]map[string]heldLock),
		entryKnown: make(map[*types.Func]bool),
		units:      make(map[*Package][]*lockUnit),
		flows:      make(map[ast.Node]*unitFlow),
	}
	cgPkgs := make([]*callgraph.Package, 0, len(pkgs))
	for _, p := range pkgs {
		a.pkgByPath[p.Path] = p
		cgPkgs = append(cgPkgs, &callgraph.Package{Path: p.Path, Files: p.Files, Info: p.Info})
		for _, f := range p.Files {
			a.units[p] = append(a.units[p], unitsOf(p.Info, f)...)
		}
	}
	a.graph = callgraph.Build(m.Fset, cgPkgs)
	a.collectGuarded()
	a.computeEntryHeld()
	a.computeOrderEdges()
	return a
}

// flowFor returns the (cached) dataflow of one unit.
func (a *modAnalysis) flowFor(pkg *Package, u *lockUnit) *unitFlow {
	a.mu.Lock()
	defer a.mu.Unlock()
	if f := a.flows[u.root()]; f != nil {
		return f
	}
	f := computeFlow(pkg.Info, u)
	a.flows[u.root()] = f
	return f
}

// heldAt returns the locks provably held (must-analysis) at pos in unit u:
// the unit's own acquisitions plus, for declaration bodies, the entry-held
// set of the declared function.
func (a *modAnalysis) heldAt(pkg *Package, u *lockUnit, pos token.Pos) map[string]heldLock {
	held := a.flowFor(pkg, u).heldAtLocal(pos)
	if u.isDecl() && u.fn != nil {
		for k, v := range a.entryHeld[u.fn] {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
	}
	return held
}

// mayHeldAt is heldAt over the may lattice (held on SOME path).
func (a *modAnalysis) mayHeldAt(pkg *Package, u *lockUnit, pos token.Pos) map[string]bool {
	may := a.flowFor(pkg, u).mayHeldAtLocal(pos)
	if u.isDecl() && u.fn != nil {
		for k := range a.entryHeld[u.fn] {
			may[k] = true
		}
	}
	return may
}

// unitAt returns the innermost unit of decl containing pos.
func (a *modAnalysis) unitAt(pkg *Package, decl *ast.FuncDecl, pos token.Pos) *lockUnit {
	var best *lockUnit
	for _, u := range a.units[pkg] {
		if u.decl != decl {
			continue
		}
		if u.lit == nil {
			if best == nil {
				best = u
			}
			continue
		}
		if pos >= u.lit.Body.Pos() && pos < u.lit.Body.End() {
			if best == nil || best.lit == nil || (u.lit.End()-u.lit.Pos()) < (best.lit.End()-best.lit.Pos()) {
				best = u
			}
		}
	}
	return best
}

// --- entry-held fixpoint ---

// entryEligible reports whether fn may carry a non-empty entry-held set:
// module-internal, never stored or spawned, with at least one call site.
func (a *modAnalysis) entryEligible(n *callgraph.Node) bool {
	name := n.Func.Name()
	if n.Decl.Recv == nil && (name == "main" || name == "init") {
		return false
	}
	if ast.IsExported(name) {
		return false // callable from tests and future code without locks
	}
	if n.AddressTaken || n.GoSpawned {
		return false
	}
	return len(n.In) > 0
}

// siteHeld returns the caller-frame lock set provably held at one call
// edge's site. ok is false while the caller's own entry set is still ⊤
// during the fixpoint.
func (a *modAnalysis) siteHeld(e *callgraph.Edge) (map[string]heldLock, bool) {
	pkg := a.pkgByPath[e.Caller.Pkg.Path]
	if pkg == nil {
		return map[string]heldLock{}, true
	}
	u := a.unitAt(pkg, e.Caller.Decl, e.Site.Pos())
	if u == nil {
		return map[string]heldLock{}, true
	}
	held := a.flowFor(pkg, u).heldAtLocal(e.Site.Pos())
	if u.isDecl() {
		if !a.entryKnown[e.Caller.Func] {
			return nil, false
		}
		for k, v := range a.entryHeld[e.Caller.Func] {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
	}
	return held, true
}

// translateHeld maps a caller-frame held set into the callee's frame:
// receiver-rooted keys follow the call's receiver expression, package-level
// keys survive same-package calls. Everything else is dropped.
func translateHeld(held map[string]heldLock, e *callgraph.Edge) map[string]heldLock {
	out := make(map[string]heldLock)
	callee := e.Callee
	if callee.Decl.Recv != nil && len(callee.Decl.Recv.List) == 1 && len(callee.Decl.Recv.List[0].Names) == 1 {
		recvName := callee.Decl.Recv.List[0].Names[0].Name
		if sel, ok := ast.Unparen(e.Site.Fun).(*ast.SelectorExpr); ok {
			if base := callgraph.RenderPath(sel.X); base != "" && recvName != "" && recvName != "_" {
				for k, v := range held {
					if strings.HasPrefix(k, base+".") {
						out[recvName+strings.TrimPrefix(k, base)] = v
					}
				}
			}
		}
	}
	if callee.Pkg.Path == e.Caller.Pkg.Path {
		for k, v := range held {
			if v.Global {
				out[k] = v
			}
		}
	}
	return out
}

func intersectHeld(a, b map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			v := va
			v.Write = va.Write && vb.Write
			out[k] = v
		}
	}
	return out
}

func heldEqual(a, b map[string]heldLock) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if ov, ok := b[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// computeEntryHeld runs the optimistic decreasing fixpoint: every eligible
// function starts at ⊤ (unknown) and is repeatedly met (set-intersection)
// with the translated held sets of its call sites until stable. Functions
// still ⊤ afterwards sit in call cycles unreachable from any root; they get
// the safe empty set.
func (a *modAnalysis) computeEntryHeld() {
	var eligible []*callgraph.Node
	for _, n := range a.graph.Nodes {
		if a.entryEligible(n) {
			eligible = append(eligible, n)
		} else {
			a.entryKnown[n.Func] = true // pinned empty
		}
	}
	const maxIter = 20
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for _, n := range eligible {
			var meet map[string]heldLock
			have := false
			for _, e := range n.In {
				held, ok := a.siteHeld(e)
				if !ok {
					continue // ⊤ contribution: meet identity
				}
				tr := translateHeld(held, e)
				if !have {
					meet = tr
					have = true
				} else {
					meet = intersectHeld(meet, tr)
				}
				if len(meet) == 0 {
					break
				}
			}
			if !have {
				continue // all contributions still ⊤
			}
			if !a.entryKnown[n.Func] || !heldEqual(a.entryHeld[n.Func], meet) {
				a.entryHeld[n.Func] = meet
				a.entryKnown[n.Func] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range eligible {
		a.entryKnown[n.Func] = true // unresolved cycles → empty
	}
}

// --- guarded-by annotations ---

const guardedByMarker = "guarded by "

// collectGuarded parses `// guarded by <lock>` annotations on struct fields
// (doc comment or trailing comment). The lock must be a sibling field of
// mutex type on the same struct, or a package-level mutex variable.
func (a *modAnalysis) collectGuarded() {
	for _, p := range a.pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					a.collectStructGuards(p, ts.Name.Name, st)
				}
			}
		}
	}
}

func (a *modAnalysis) collectStructGuards(p *Package, typeName string, st *ast.StructType) {
	lockName := func(field *ast.Field) (string, bool) {
		for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimLeft(c.Text, "/* "))
				if i := strings.Index(text, guardedByMarker); i >= 0 {
					rest := strings.Fields(text[i+len(guardedByMarker):])
					if len(rest) > 0 {
						return strings.TrimRight(rest[0], ".,;"), true
					}
					return "", true
				}
			}
		}
		return "", false
	}
	siblingMutex := func(name string) bool {
		for _, f := range st.Fields.List {
			for _, n := range f.Names {
				if n.Name == name {
					if obj, ok := p.Info.Defs[n].(*types.Var); ok {
						return isMutexType(obj.Type())
					}
				}
			}
		}
		return false
	}
	globalMutex := func(name string) bool {
		if p.Types == nil {
			return false
		}
		v, ok := p.Types.Scope().Lookup(name).(*types.Var)
		return ok && isMutexType(v.Type())
	}
	for _, field := range st.Fields.List {
		lock, annotated := lockName(field)
		if !annotated {
			continue
		}
		pos := field.Pos()
		file := a.m.Fset.Position(pos).Filename
		if lock == "" {
			a.badGuards = append(a.badGuards, badGuard{pos: pos, file: file,
				reason: "malformed annotation: want \"guarded by <lock>\""})
			continue
		}
		var spec guardSpec
		switch {
		case siblingMutex(lock):
			spec = guardSpec{lock: lock, owner: typeName}
		case globalMutex(lock):
			spec = guardSpec{lock: lock, global: true, owner: typeName}
		default:
			a.badGuards = append(a.badGuards, badGuard{pos: pos, file: file,
				reason: "guarded by " + lock + ": no sibling field or package-level sync.Mutex/RWMutex with that name"})
			continue
		}
		for _, name := range field.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok {
				a.guarded[v] = spec
			}
		}
	}
}

// --- lock-acquisition order graph ---

// forEachLock replays the must-state through every reachable block and calls
// fn at each Lock/RLock op with the locks held immediately before it.
func (f *unitFlow) forEachLock(fn func(op lockOp, heldBefore map[string]heldLock)) {
	if !f.hasLocks {
		return
	}
	for _, b := range f.g.Blocks {
		if f.mustIn[b.Index] == nil {
			continue
		}
		st := f.mustIn[b.Index].clone()
		may := cloneStringSet(f.mayIn[b.Index])
		tok := cloneIntSet(f.tokIn[b.Index])
		for _, op := range f.blockOps[b.Index] {
			if op.kind == opLock {
				snap := make(map[string]heldLock, len(st.held))
				for k, v := range st.held {
					snap[k] = v
				}
				fn(op, snap)
			}
			applyLockOp(st, may, tok, f.sites, op)
		}
	}
}

// computeOrderEdges records every "B acquired while A held" observation, in
// type-level keys: directly at Lock sites, and interprocedurally at call
// sites whose callee's synchronous closure acquires further locks.
func (a *modAnalysis) computeOrderEdges() {
	type edgeKey struct {
		from, to string
		pos      token.Pos
	}
	seen := make(map[edgeKey]bool)
	add := func(from, to string, pos token.Pos) {
		if from == "" || to == "" || from == to {
			return
		}
		k := edgeKey{from, to, pos}
		if seen[k] {
			return
		}
		seen[k] = true
		a.orderEdges = append(a.orderEdges, orderEdge{from: from, to: to, pos: pos})
	}

	for _, p := range a.pkgs {
		for _, u := range a.units[p] {
			flow := a.flowFor(p, u)
			if !flow.hasLocks {
				continue
			}
			entry := map[string]heldLock{}
			if u.isDecl() && u.fn != nil {
				entry = a.entryHeld[u.fn]
			}
			flow.forEachLock(func(op lockOp, held map[string]heldLock) {
				for k, h := range entry {
					if _, ok := held[k]; !ok {
						held[k] = h
					}
				}
				for _, h := range held {
					add(h.TypeKey, op.typeKey, op.call.Pos())
				}
			})
		}
	}
	for _, n := range a.graph.Nodes {
		for _, e := range n.Out {
			if e.Async {
				continue
			}
			held, ok := a.siteHeld(e)
			if !ok {
				continue
			}
			var fromKeys []string
			for _, h := range held {
				if h.TypeKey != "" {
					fromKeys = append(fromKeys, h.TypeKey)
				}
			}
			if len(fromKeys) == 0 {
				continue
			}
			for _, to := range a.graph.AcquiresClosure(e.Callee) {
				for _, from := range fromKeys {
					add(from, to, e.Site.Pos())
				}
			}
		}
	}
	sort.Slice(a.orderEdges, func(i, j int) bool {
		if a.orderEdges[i].pos != a.orderEdges[j].pos {
			return a.orderEdges[i].pos < a.orderEdges[j].pos
		}
		if a.orderEdges[i].from != a.orderEdges[j].from {
			return a.orderEdges[i].from < a.orderEdges[j].from
		}
		return a.orderEdges[i].to < a.orderEdges[j].to
	})
}

// lockInversions detects cycles in the acquisition-order graph: an edge
// A→B is an inversion when B also (transitively) precedes A somewhere else.
func (a *modAnalysis) lockInversions() []inversion {
	a.invOnce.Do(func() {
		adj := make(map[string][]orderEdge)
		for _, e := range a.orderEdges {
			adj[e.from] = append(adj[e.from], e)
		}
		// pathTo finds an edge path from -> ... -> to and returns the final
		// edge (the one that acquires `to`), or nil.
		pathTo := func(from, to string) *orderEdge {
			type qe struct {
				key string
				via *orderEdge
			}
			seen := map[string]bool{from: true}
			queue := []qe{{key: from}}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for i := range adj[cur.key] {
					e := &adj[cur.key][i]
					if e.to == to {
						return e
					}
					if !seen[e.to] {
						seen[e.to] = true
						queue = append(queue, qe{key: e.to, via: e})
					}
				}
			}
			return nil
		}
		type invKey struct {
			from, to string
			pos      token.Pos
		}
		dedup := make(map[invKey]bool)
		for _, e := range a.orderEdges {
			counter := pathTo(e.to, e.from)
			if counter == nil {
				continue
			}
			k := invKey{e.from, e.to, e.pos}
			if dedup[k] {
				continue
			}
			dedup[k] = true
			a.inversions = append(a.inversions, inversion{
				from: e.from, to: e.to, pos: e.pos, counter: counter.pos,
			})
		}
	})
	return a.inversions
}
