package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"wise/internal/lint/cfg"
)

// IndexGuardAnalyzer protects the SpMV kernels from the one class of memory
// error matrix data can cause: indexing an external slice (the x/y vectors,
// a permutation, a scratch buffer) with a value loaded from RowPtr/ColIdx.
// Those values come from parsed matrix files, so a corrupt or adversarial
// input drives the index anywhere; every such access must be dominated by a
// bounds validation — a comparison involving len(<indexed slice>) or a call
// to a validation helper — on every path from the function entry (dominance
// comes from the CFG layer, taint from cfg.Derived). Indexing the format's
// own arrays (f.Vals[j], f.ColIdx[j]) is exempt: their lengths are coupled
// to RowPtr by construction.
var IndexGuardAnalyzer = &Analyzer{
	Name: "indexguard",
	Doc:  "flags kernel indexing with RowPtr/ColIdx-derived values that lacks a dominating bounds validation",
	Run:  runIndexGuard,
}

func inKernelScope(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) && segs[i+1] == "kernels" {
			return true
		}
	}
	return false
}

// matrixDataName reports whether a field or variable name is a row-pointer
// or column-index array.
func matrixDataName(name string) bool {
	switch strings.ToLower(name) {
	case "rowptr", "colidx":
		return true
	}
	return false
}

func runIndexGuard(pass *Pass) {
	if !inKernelScope(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkIndexGuards(pass, fd)
		}
	}
}

// seedExpr reports whether e reads matrix data directly: an identifier or
// selector named rowPtr/colIdx (any case).
func seedExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return matrixDataName(x.Name)
	case *ast.SelectorExpr:
		return matrixDataName(x.Sel.Name)
	}
	return false
}

func checkIndexGuards(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	g := cfg.FuncGraph(fd)
	if g == nil {
		return
	}
	derived := cfg.Derived(fd, info, seedExpr)
	guards := guardBlocks(pass, g)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if !indexIsTainted(info, derived, ix.Index) {
			return true
		}
		if ownArrayAccess(info, ix.X) {
			return true
		}
		base := exprString(pass, ix.X)
		ixBlock := g.BlockOf(ix.Pos())
		if ixBlock != nil && dominatedByGuard(g, guards, base, ixBlock) {
			return true
		}
		depth := 0
		if ixBlock != nil {
			depth = g.LoopDepth(ixBlock)
		}
		pass.Reportf(ix.Pos(),
			"indexing %q with a RowPtr/ColIdx-derived value (loop depth %d) without a dominating bounds check; validate len(%s) against the matrix dims before the loop",
			base, depth, base)
		return true
	})
}

// indexIsTainted reports whether the index expression reads matrix data
// directly or through a derived local.
func indexIsTainted(info *types.Info, derived map[types.Object]bool, index ast.Expr) bool {
	tainted := false
	ast.Inspect(index, func(n ast.Node) bool {
		if tainted {
			return false
		}
		if e, ok := n.(ast.Expr); ok && seedExpr(e) {
			tainted = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && derived[obj] {
				tainted = true
				return false
			}
		}
		return true
	})
	return tainted
}

// ownArrayAccess exempts indexing into the matrix format's own arrays: a
// selector whose base struct also carries the RowPtr/ColIdx fields, so its
// lengths are construction invariants of the same value.
func ownArrayAccess(info *types.Info, base ast.Expr) bool {
	sel, ok := ast.Unparen(base).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if matrixDataName(st.Field(i).Name()) {
			return true
		}
	}
	return false
}

// guardBlocks maps each basic block to the printed slice expressions it
// validates: operands of len(...) inside a comparison, plus a wildcard for
// calls to validation helpers (Validate/Check/Bounds in the name).
type guardSet struct {
	byBlock map[*cfg.Block]map[string]bool
	anyLen  map[*cfg.Block]bool // block calls a validation helper
}

func guardBlocks(pass *Pass, g *cfg.Graph) *guardSet {
	gs := &guardSet{
		byBlock: make(map[*cfg.Block]map[string]bool),
		anyLen:  make(map[*cfg.Block]bool),
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.BinaryExpr:
					for _, side := range []ast.Expr{x.X, x.Y} {
						if call, ok := ast.Unparen(side).(*ast.CallExpr); ok {
							if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
								if gs.byBlock[b] == nil {
									gs.byBlock[b] = make(map[string]bool)
								}
								gs.byBlock[b][exprString(pass, call.Args[0])] = true
							}
						}
					}
				case *ast.CallExpr:
					if id := calleeFunc(x); id != nil {
						name := id.Name
						if strings.Contains(name, "Valid") || strings.Contains(name, "Check") || strings.Contains(name, "Bounds") {
							gs.anyLen[b] = true
						}
					}
				}
				return true
			})
		}
	}
	return gs
}

// dominatedByGuard reports whether some block dominating ix validates the
// indexed slice.
func dominatedByGuard(g *cfg.Graph, gs *guardSet, base string, ixBlock *cfg.Block) bool {
	for b, exprs := range gs.byBlock {
		if exprs[base] && g.Dominates(b, ixBlock) {
			return true
		}
	}
	for b := range gs.anyLen {
		if g.Dominates(b, ixBlock) {
			return true
		}
	}
	return false
}
