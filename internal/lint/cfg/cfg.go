// Package cfg builds per-function control-flow graphs for the wise-lint
// analyzers (LINTING.md, "The v2 engine"). A Graph is a set of basic blocks
// over the statements and control expressions of one function body; on top
// of it the package computes dominators, back edges, natural loops with
// nesting depth, and a small forward dataflow layer (reaching definitions in
// dataflow.go). The graphs are intraprocedural and syntactic: function
// literals are treated as opaque values of the enclosing function (their
// bodies get graphs of their own when an analyzer asks for one), and panics
// and calls that never return (os.Exit, runtime.Goexit, log.Fatal*) are
// modelled as jumps to the exit block so guard clauses dominate what they
// protect.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line sequence of statements
// and control expressions with edges only at the end.
type Block struct {
	Index int
	Kind  string     // construction site, for tests and debugging ("for.head", "if.then", ...)
	Nodes []ast.Node // statements and control expressions in execution order
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // all blocks, Entry first, Exit last, in creation order

	fnType *ast.FuncType // non-nil when built via FuncGraph; used for entry defs

	idom  []int // immediate dominator per block index; -1 = unreachable/entry
	rpo   []int // reverse-postorder position per block index; -1 = unreachable
	loops []*Loop
	depth []int // loop-nesting depth per block index
}

// Loop is one natural loop discovered from a back edge, merged per header.
type Loop struct {
	Head   *Block
	Blocks []*Block // all blocks in the loop, including Head
	Depth  int      // 1 for an outermost loop, 2 for one nested inside it, ...
}

// FuncGraph builds the graph of a function declaration or function literal.
// It accepts *ast.FuncDecl and *ast.FuncLit; any other node (or a FuncDecl
// without a body) yields nil.
func FuncGraph(fn ast.Node) *Graph {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		if f.Body == nil {
			return nil
		}
		g := New(f.Body)
		g.fnType = f.Type
		return g
	case *ast.FuncLit:
		g := New(f.Body)
		g.fnType = f.Type
		return g
	}
	return nil
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit)
	for _, pg := range b.gotos {
		if lb, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, lb)
		} else {
			b.edge(pg.from, b.g.Exit) // unresolved goto: conservatively leave the function
		}
	}
	// Creation order puts Exit second; move it last for readable dumps.
	g := b.g
	if len(g.Blocks) > 2 {
		blocks := make([]*Block, 0, len(g.Blocks))
		blocks = append(blocks, g.Blocks[0])
		blocks = append(blocks, g.Blocks[2:]...)
		blocks = append(blocks, g.Blocks[1])
		g.Blocks = blocks
		for i, blk := range g.Blocks {
			blk.Index = i
		}
	}
	g.analyze()
	return g
}

// --- construction ---

type frame struct {
	label  string
	isLoop bool
	brk    *Block
	cont   *Block // nil for switch/select frames
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g            *Graph
	cur          *Block
	frames       []*frame
	labels       map[string]*Block
	gotos        []pendingGoto
	pendingLabel string
	fallthroughT *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

// unreachable starts a fresh block with no predecessors, for statements
// following a terminator.
func (b *builder) unreachable() { b.cur = b.newBlock("unreachable") }

func (b *builder) pushFrame(f *frame) {
	f.label = b.pendingLabel
	b.pendingLabel = ""
	b.frames = append(b.frames, f)
}

func (b *builder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

func (b *builder) breakTarget(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.brk
		}
	}
	return b.g.Exit
}

func (b *builder) continueTarget(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.isLoop && (label == "" || f.label == label) {
			return f.cont
		}
	}
	return b.g.Exit
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		lb := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.unreachable()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, "switch")
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, "typeswitch")
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
		// DeferStmt: straight-line statements.
		b.add(s)
		if es, ok := s.(*ast.ExprStmt); ok && isTerminatingCall(es.X) {
			b.edge(b.cur, b.g.Exit)
			b.unreachable()
		}
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		b.edge(b.cur, b.breakTarget(label))
	case token.CONTINUE:
		b.edge(b.cur, b.continueTarget(label))
	case token.GOTO:
		if lb, ok := b.labels[label]; ok {
			b.edge(b.cur, lb)
		} else {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		}
	case token.FALLTHROUGH:
		if b.fallthroughT != nil {
			b.edge(b.cur, b.fallthroughT)
		}
	}
	b.unreachable()
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur
	after := b.newBlock("if.after")
	b.edge(thenEnd, after)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock("for.body")
	b.edge(head, body)
	after := b.newBlock("for.after")
	if s.Cond != nil {
		b.edge(head, after)
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		cont = post
	}
	b.pushFrame(&frame{isLoop: true, brk: after, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, cont)
	b.popFrame()
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	head.Nodes = append(head.Nodes, s) // carries X and the Key/Value binding
	body := b.newBlock("range.body")
	b.edge(head, body)
	after := b.newBlock("range.after")
	b.edge(head, after)
	b.pushFrame(&frame{isLoop: true, brk: after, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)
	b.popFrame()
	b.cur = after
}

func (b *builder) switchBody(body *ast.BlockStmt, kind string) {
	head := b.cur
	after := b.newBlock(kind + ".after")
	b.pushFrame(&frame{brk: after})
	var clauses []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		caseBlocks[i] = b.newBlock(kind + ".case")
		b.edge(head, caseBlocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	savedFT := b.fallthroughT
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		if i+1 < len(clauses) {
			b.fallthroughT = caseBlocks[i+1]
		} else {
			b.fallthroughT = nil
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fallthroughT = savedFT
	b.popFrame()
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock("select.after")
	b.pushFrame(&frame{brk: after})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.popFrame()
	b.cur = after
}

// isTerminatingCall reports whether the expression statement is a call that
// never returns: panic, os.Exit, runtime.Goexit, log.Fatal*. Syntactic —
// the cfg package has no type information by design.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// --- dominators, back edges, loops ---

// analyze computes reverse postorder, dominators, and natural loops.
func (g *Graph) analyze() {
	n := len(g.Blocks)
	g.rpo = make([]int, n)
	g.idom = make([]int, n)
	for i := range g.rpo {
		g.rpo[i] = -1
		g.idom[i] = -1
	}
	// Postorder DFS from entry.
	var order []*Block
	seen := make([]bool, n)
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(g.Entry)
	// order is postorder; reverse-postorder position = len-1-i.
	for i, b := range order {
		g.rpo[b.Index] = len(order) - 1 - i
	}
	// Cooper/Harvey/Kennedy iterative dominators over reachable blocks.
	rpoBlocks := make([]*Block, len(order))
	for i, b := range order {
		rpoBlocks[len(order)-1-i] = b
	}
	g.idom[g.Entry.Index] = g.Entry.Index
	for changed := true; changed; {
		changed = false
		for _, b := range rpoBlocks {
			if b == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range b.Preds {
				if g.idom[p.Index] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p.Index
				} else {
					newIdom = g.intersect(p.Index, newIdom)
				}
			}
			if newIdom >= 0 && g.idom[b.Index] != newIdom {
				g.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	g.findLoops()
}

func (g *Graph) intersect(a, b int) int {
	for a != b {
		for g.rpo[a] > g.rpo[b] {
			a = g.idom[a]
		}
		for g.rpo[b] > g.rpo[a] {
			b = g.idom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b (every path from entry to b passes
// through a). A block dominates itself. Unreachable blocks are dominated by
// nothing and dominate nothing.
func (g *Graph) Dominates(a, b *Block) bool {
	if g.idom[a.Index] < 0 || g.idom[b.Index] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := g.idom[b.Index]
		if next == b.Index {
			return false // reached entry
		}
		b = g.Blocks[next]
	}
}

// BackEdges returns every edge u->v where v dominates u — the loop-closing
// edges.
func (g *Graph) BackEdges() [][2]*Block {
	var out [][2]*Block
	for _, u := range g.Blocks {
		for _, v := range u.Succs {
			if g.idom[u.Index] >= 0 && g.Dominates(v, u) {
				out = append(out, [2]*Block{u, v})
			}
		}
	}
	return out
}

// findLoops builds natural loops from back edges, merging loops that share a
// header, and computes per-block nesting depth.
func (g *Graph) findLoops() {
	byHead := make(map[*Block]map[*Block]bool)
	for _, e := range g.BackEdges() {
		tail, head := e[0], e[1]
		set := byHead[head]
		if set == nil {
			set = map[*Block]bool{head: true}
			byHead[head] = set
		}
		// All blocks that reach tail without passing through head.
		stack := []*Block{tail}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if set[b] {
				continue
			}
			set[b] = true
			for _, p := range b.Preds {
				if g.idom[p.Index] >= 0 {
					stack = append(stack, p)
				}
			}
		}
	}
	g.depth = make([]int, len(g.Blocks))
	g.loops = nil
	for head, set := range byHead {
		blocks := make([]*Block, 0, len(set))
		for b := range set {
			blocks = append(blocks, b)
		}
		sortBlocks(blocks)
		g.loops = append(g.loops, &Loop{Head: head, Blocks: blocks})
	}
	sortLoops(g.loops)
	for _, b := range g.Blocks {
		for _, l := range g.loops {
			if containsBlock(l.Blocks, b) {
				g.depth[b.Index]++
			}
		}
	}
	for _, l := range g.loops {
		l.Depth = g.depth[l.Head.Index]
	}
}

// Loops returns the natural loops of the graph, outermost headers first.
func (g *Graph) Loops() []*Loop { return g.loops }

// LoopDepth returns the loop-nesting depth of a block: 0 outside any loop.
func (g *Graph) LoopDepth(b *Block) int { return g.depth[b.Index] }

func sortBlocks(bs []*Block) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Index < bs[j-1].Index; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

func sortLoops(ls []*Loop) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].Head.Index < ls[j-1].Head.Index; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// --- position mapping ---

// BlockOf returns the block holding the innermost recorded node whose source
// range contains pos, or nil when pos is outside every recorded node (e.g. a
// position inside a nested function literal maps to the statement that
// contains the literal).
func (g *Graph) BlockOf(pos token.Pos) *Block {
	var best ast.Node
	var bestBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				if best == nil || (n.End()-n.Pos()) < (best.End()-best.Pos()) {
					best = n
					bestBlock = b
				}
			}
		}
	}
	return bestBlock
}

// LoopDepthAt returns the loop-nesting depth at a source position, 0 when
// the position is outside every loop or not recorded in the graph.
func (g *Graph) LoopDepthAt(pos token.Pos) int {
	b := g.BlockOf(pos)
	if b == nil {
		return 0
	}
	return g.LoopDepth(b)
}
