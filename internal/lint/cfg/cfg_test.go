package cfg

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// The fixture functions below exercise every structural shape the builder
// handles. Each test case asserts the block count, the number of back edges,
// the number of natural loops, and the loop depth at every sink(...) call in
// source order.
const fixtureSrc = `package fix

func sink(x int) {}

func nested(a [][]int) int {
	s := 0
	for i := 0; i < len(a); i++ {
		for j := 0; j < len(a[i]); j++ {
			sink(i + j)
			s += a[i][j]
		}
	}
	return s
}

func ifelse(x int) int {
	y := 0
	if x > 0 {
		sink(1)
		y = 1
	} else {
		sink(2)
		y = 2
	}
	sink(y)
	return y
}

func contbreak(a []int) int {
	s := 0
	for i := 0; i < len(a); i++ {
		if a[i] < 0 {
			continue
		}
		if a[i] > 100 {
			break
		}
		sink(s)
		s += a[i]
	}
	return s
}

func sel(c, d chan int) int {
	select {
	case v := <-c:
		sink(v)
		return v
	case <-d:
		return 0
	}
}

func labeled(a [][]int) int {
	s := 0
outer:
	for i := range a {
		for j := range a[i] {
			if a[i][j] == 0 {
				continue outer
			}
			sink(j)
			s += a[i][j]
		}
	}
	return s
}

func guarded(p []int, n int) {
	if n > len(p) {
		panic("short")
	}
	for i := 0; i < n; i++ {
		sink(p[i])
	}
}

func deferloop(a []int) int {
	s := 0
	for i := range a {
		defer sink(i)
		s += a[i]
	}
	return s
}

func labeledbreak(a [][]int) int {
	s := 0
outer2:
	for i := range a {
		for j := range a[i] {
			if a[i][j] < 0 {
				break outer2
			}
			sink(j)
			s += a[i][j]
		}
	}
	return s
}

func gotoloop(n int) int {
	s := 0
	i := 0
again:
	if i < n {
		sink(i)
		s += i
		i++
		goto again
	}
	return s
}

func gotofwd(x int) int {
	if x < 0 {
		goto done
	}
	sink(x)
done:
	return x
}

func selloop(c, d chan int) int {
	s := 0
	for i := 0; i < 4; i++ {
		select {
		case v := <-c:
			sink(v)
			s += v
		case <-d:
			return s
		}
	}
	return s
}

func fallthru(x int) int {
	y := 0
	switch x {
	case 0:
		y = 1
		fallthrough
	case 1:
		y = 2
	default:
		y = 3
	}
	return y
}
`

func parseFixture(t *testing.T) (*token.FileSet, map[string]*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", fixtureSrc, 0)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	fns := make(map[string]*ast.FuncDecl)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
		}
	}
	return fset, fns
}

// sinkDepths returns the loop depth at each sink(...) call in source order.
func sinkDepths(g *Graph, fn *ast.FuncDecl) []int {
	var out []int
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
			out = append(out, g.LoopDepthAt(call.Pos()))
		}
		return true
	})
	return out
}

func dumpGraph(g *Graph) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "  b%d %-14s depth=%d succs=", b.Index, b.Kind, g.LoopDepth(b))
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, "b%d ", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestGraphShapes(t *testing.T) {
	fset, fns := parseFixture(t)
	_ = fset
	cases := []struct {
		fn         string
		blocks     int
		backEdges  int
		loops      int
		sinkDepths []int
	}{
		{fn: "nested", blocks: 11, backEdges: 2, loops: 2, sinkDepths: []int{2}},
		{fn: "ifelse", blocks: 6, backEdges: 0, loops: 0, sinkDepths: []int{0, 0, 0}},
		{fn: "contbreak", blocks: 13, backEdges: 1, loops: 1, sinkDepths: []int{1}},
		{fn: "sel", blocks: 7, backEdges: 0, loops: 0, sinkDepths: []int{0}},
		{fn: "labeled", blocks: 13, backEdges: 3, loops: 2, sinkDepths: []int{2}},
		{fn: "guarded", blocks: 9, backEdges: 1, loops: 1, sinkDepths: []int{1}},
		{fn: "fallthru", blocks: 8, backEdges: 0, loops: 0, sinkDepths: nil},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			fd := fns[tc.fn]
			if fd == nil {
				t.Fatalf("fixture %s missing", tc.fn)
			}
			g := FuncGraph(fd)
			if g == nil {
				t.Fatalf("FuncGraph returned nil")
			}
			if got := len(g.Blocks); got != tc.blocks {
				t.Errorf("blocks = %d, want %d\n%s", got, tc.blocks, dumpGraph(g))
			}
			if got := len(g.BackEdges()); got != tc.backEdges {
				t.Errorf("back edges = %d, want %d\n%s", got, tc.backEdges, dumpGraph(g))
			}
			if got := len(g.Loops()); got != tc.loops {
				t.Errorf("loops = %d, want %d\n%s", got, tc.loops, dumpGraph(g))
			}
			if got := sinkDepths(g, fd); !equalInts(got, tc.sinkDepths) {
				t.Errorf("sink depths = %v, want %v\n%s", got, tc.sinkDepths, dumpGraph(g))
			}
		})
	}
}

// TestGraphEdgeCases pins the shapes the lock-held-set dataflow
// (internal/lint lockstate) leans on: defer inside a loop, labeled break,
// backward and forward goto, and select inside a loop. Each case asserts the
// back-edge and natural-loop counts, the loop depth at every sink call, and
// the dominator invariants the lattice iteration assumes: every loop head
// dominates every block of its loop, and the entry dominates every block
// that carries statements.
func TestGraphEdgeCases(t *testing.T) {
	_, fns := parseFixture(t)
	cases := []struct {
		fn         string
		backEdges  int
		loops      int
		sinkDepths []int
	}{
		{fn: "deferloop", backEdges: 1, loops: 1, sinkDepths: []int{1}},
		{fn: "labeledbreak", backEdges: 2, loops: 2, sinkDepths: []int{2}},
		{fn: "gotoloop", backEdges: 1, loops: 1, sinkDepths: []int{1}},
		{fn: "gotofwd", backEdges: 0, loops: 0, sinkDepths: []int{0}},
		{fn: "selloop", backEdges: 1, loops: 1, sinkDepths: []int{1}},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			fd := fns[tc.fn]
			if fd == nil {
				t.Fatalf("fixture %s missing", tc.fn)
			}
			g := FuncGraph(fd)
			if got := len(g.BackEdges()); got != tc.backEdges {
				t.Errorf("back edges = %d, want %d\n%s", got, tc.backEdges, dumpGraph(g))
			}
			if got := len(g.Loops()); got != tc.loops {
				t.Errorf("loops = %d, want %d\n%s", got, tc.loops, dumpGraph(g))
			}
			if got := sinkDepths(g, fd); !equalInts(got, tc.sinkDepths) {
				t.Errorf("sink depths = %v, want %v\n%s", got, tc.sinkDepths, dumpGraph(g))
			}
			for _, l := range g.Loops() {
				for _, b := range l.Blocks {
					if !g.Dominates(l.Head, b) {
						t.Errorf("loop head b%d must dominate loop block b%d\n%s", l.Head.Index, b.Index, dumpGraph(g))
					}
				}
			}
			for _, b := range g.Blocks {
				if len(b.Nodes) == 0 {
					continue
				}
				if !g.Dominates(g.Entry, b) {
					t.Errorf("entry must dominate statement block b%d (%s)\n%s", b.Index, b.Kind, dumpGraph(g))
				}
			}
		})
	}

	// Shape specifics. The backward goto forms a natural loop whose head is
	// the label block; the labeled break's then-block escapes both natural
	// loops; the select's case blocks all sit inside selloop's loop.
	g := FuncGraph(fns["gotoloop"])
	if n := len(g.Loops()); n == 1 {
		if head := g.Loops()[0].Head; head.Kind != "label.again" {
			t.Errorf("gotoloop natural-loop head = %s, want label.again\n%s", head.Kind, dumpGraph(g))
		}
	}
	g = FuncGraph(fns["labeledbreak"])
	for _, l := range g.Loops() {
		for _, b := range l.Blocks {
			if b.Kind == "if.then" {
				t.Errorf("labeled-break block b%d must escape the natural loop\n%s", b.Index, dumpGraph(g))
			}
		}
	}
	g = FuncGraph(fns["selloop"])
	if n := len(g.Loops()); n == 1 {
		loop := g.Loops()[0]
		cases := 0
		for _, b := range loop.Blocks {
			if strings.HasPrefix(b.Kind, "select.case") {
				cases++
			}
		}
		// Only the receive-and-accumulate case loops back; the returning case
		// exits and is not part of the natural loop.
		if cases != 1 {
			t.Errorf("want 1 select.case block inside selloop's loop, got %d\n%s", cases, dumpGraph(g))
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEntryExitInvariants(t *testing.T) {
	_, fns := parseFixture(t)
	for name, fd := range fns {
		g := FuncGraph(fd)
		if g.Blocks[0] != g.Entry {
			t.Errorf("%s: entry is not first block", name)
		}
		if g.Blocks[len(g.Blocks)-1] != g.Exit {
			t.Errorf("%s: exit is not last block", name)
		}
		for i, b := range g.Blocks {
			if b.Index != i {
				t.Errorf("%s: block %d has Index %d", name, i, b.Index)
			}
		}
		if len(g.Exit.Succs) != 0 {
			t.Errorf("%s: exit has successors", name)
		}
	}
}

func TestDominates(t *testing.T) {
	_, fns := parseFixture(t)
	g := FuncGraph(fns["nested"])
	// Entry dominates everything reachable; exit dominates only itself.
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" {
			continue
		}
		if !g.Dominates(g.Entry, b) {
			t.Errorf("entry should dominate b%d (%s)", b.Index, b.Kind)
		}
	}
	if g.Dominates(g.Exit, g.Entry) {
		t.Error("exit must not dominate entry")
	}
	// The panic guard in `guarded` dominates the loop body: the entry block
	// (holding the if cond) dominates every loop block.
	gg := FuncGraph(fns["guarded"])
	for _, l := range gg.Loops() {
		for _, b := range l.Blocks {
			if !gg.Dominates(gg.Entry, b) {
				t.Errorf("guard block should dominate loop block b%d", b.Index)
			}
		}
	}
}

func TestBreakBlockOutsideNaturalLoop(t *testing.T) {
	// A block that unconditionally breaks cannot reach the back edge, so it
	// is not part of the natural loop; analyzers rely on this to ignore
	// early-exit paths.
	_, fns := parseFixture(t)
	g := FuncGraph(fns["contbreak"])
	if len(g.Loops()) != 1 {
		t.Fatalf("want 1 loop, got %d", len(g.Loops()))
	}
	loop := g.Loops()[0]
	inLoop := 0
	for _, b := range g.Blocks {
		if b.Kind == "if.then" && containsBlock(loop.Blocks, b) {
			inLoop++
		}
	}
	// Only the continue-then block (which reaches the back edge) is in the
	// loop; the break-then block is not.
	if inLoop != 1 {
		t.Errorf("want exactly 1 if.then block inside the loop, got %d\n%s", inLoop, dumpGraph(g))
	}
}

const dataflowSrc = `package fix

func reach(cond bool) int {
	x := 1
	if cond {
		x = 2
	} else {
		x = 3
	}
	return x
}

func loopcarried(n int) int {
	acc := 0
	for i := 0; i < n; i++ {
		acc = acc + i
	}
	return acc
}

func escapes(out *[]int, n int) []int {
	kept := make([]int, 0, n)
	local := make([]int, n)
	captured := make([]int, n)
	f := func() int { return len(captured) }
	_ = f()
	*out = kept
	_ = local
	return kept
}

func derived(rowPtr []int, n int) int {
	start := rowPtr[0]
	end := start + 1
	clean := n * 2
	return end + clean
}
`

func typecheckSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "df.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("fix", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

func funcDecl(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

func TestReachingDefs(t *testing.T) {
	_, f, info := typecheckSrc(t, dataflowSrc)
	fd := funcDecl(f, "reach")
	g := FuncGraph(fd)
	r := g.ReachingDefs(info)

	var xObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "x" && obj != nil {
			xObj = obj
		}
	}
	if xObj == nil {
		t.Fatal("no def for x")
	}
	defs := r.DefsOf(xObj)
	if len(defs) != 3 {
		t.Fatalf("want 3 defs of x, got %d", len(defs))
	}
	// At the if.after block (which holds the return) the x:=1 def is killed
	// on both paths; the two branch defs both reach.
	var merge *Block
	for _, b := range g.Blocks {
		if b.Kind == "if.after" {
			merge = b
		}
	}
	if merge == nil {
		t.Fatal("no merge block")
	}
	reaching := 0
	initialReaches := false
	for _, di := range defs {
		if r.ReachesEntry(merge, di) {
			reaching++
			if r.Defs[di].Block == g.Entry {
				initialReaches = true
			}
		}
	}
	if reaching != 2 {
		t.Errorf("want 2 defs of x reaching the merge, got %d", reaching)
	}
	if initialReaches {
		t.Error("x := 1 must be killed on both branches before the merge")
	}

	// Loop-carried: the in-loop def of acc reaches the loop head.
	fd2 := funcDecl(f, "loopcarried")
	g2 := FuncGraph(fd2)
	r2 := g2.ReachingDefs(info)
	var accObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "acc" && obj != nil {
			accObj = obj
		}
	}
	var head *Block
	for _, b := range g2.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil || accObj == nil {
		t.Fatal("missing loop head or acc object")
	}
	loopDefReaches := false
	for _, di := range r2.DefsOf(accObj) {
		if g2.LoopDepth(r2.Defs[di].Block) > 0 && r2.ReachesEntry(head, di) {
			loopDefReaches = true
		}
	}
	if !loopDefReaches {
		t.Error("loop-carried def of acc should reach the loop head")
	}
}

func TestLeaves(t *testing.T) {
	_, f, info := typecheckSrc(t, dataflowSrc)
	fd := funcDecl(f, "escapes")
	leaves := Leaves(fd, info)
	byName := func(name string) types.Object {
		var found types.Object
		ast.Inspect(fd, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				if obj := info.Defs[id]; obj != nil {
					found = obj
				}
			}
			return true
		})
		return found
	}
	if !leaves[byName("kept")] {
		t.Error("kept is returned and stored through *out: should leave")
	}
	if !leaves[byName("captured")] {
		t.Error("captured is referenced by a closure: should leave")
	}
	if leaves[byName("local")] {
		t.Error("local never leaves the function")
	}
}

func TestDerived(t *testing.T) {
	_, f, info := typecheckSrc(t, dataflowSrc)
	fd := funcDecl(f, "derived")
	seed := func(e ast.Expr) bool {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return false
		}
		id, ok := ix.X.(*ast.Ident)
		return ok && id.Name == "rowPtr"
	}
	der := Derived(fd, info, seed)
	names := make(map[string]bool)
	for obj := range der {
		names[obj.Name()] = true
	}
	if !names["start"] {
		t.Error("start is loaded from rowPtr: should be derived")
	}
	if !names["end"] {
		t.Error("end is computed from start: should be derived (transitive)")
	}
	if names["clean"] {
		t.Error("clean has no rowPtr provenance")
	}
}
