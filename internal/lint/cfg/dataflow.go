package cfg

import (
	"go/ast"
	"go/types"
)

// This file is the forward dataflow layer over the CFG: classic bitvector
// reaching definitions, a derived-value (taint) propagation helper, and the
// "value leaves the function" escape-ish tracking the hotalloc analyzer uses
// to tell per-iteration garbage from result building.

// Def is one static definition of a variable: an assignment, declaration,
// inc/dec, range binding, or function parameter (parameters define at entry).
type Def struct {
	Obj   types.Object
	Node  ast.Node // defining statement; nil for parameter entry defs
	Block *Block
}

// ReachDefs is the solved reaching-definitions problem: for every block, the
// set of definitions that may reach its entry and exit.
type ReachDefs struct {
	Defs []Def
	In   []bitset // per block index
	Out  []bitset
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s bitset) clear(i int)    { s[i/64] &^= 1 << (i % 64) }
func (s bitset) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

func (s bitset) orInto(o bitset) bool {
	changed := false
	for i := range s {
		if v := s[i] | o[i]; v != s[i] {
			s[i] = v
			changed = true
		}
	}
	return changed
}

func (s bitset) copyFrom(o bitset) {
	copy(s, o)
}

// ReachingDefs collects every definition in the graph and solves the forward
// may-reach problem with union meet. Parameters of the function (when the
// graph was built with FuncGraph) define at the entry block.
func (g *Graph) ReachingDefs(info *types.Info) *ReachDefs {
	r := &ReachDefs{}
	defsOf := make(map[types.Object][]int)
	addDef := func(obj types.Object, n ast.Node, b *Block) {
		if obj == nil {
			return
		}
		defsOf[obj] = append(defsOf[obj], len(r.Defs))
		r.Defs = append(r.Defs, Def{Obj: obj, Node: n, Block: b})
	}
	if g.fnType != nil {
		for _, field := range paramFields(g.fnType) {
			for _, name := range field.Names {
				addDef(info.Defs[name], nil, g.Entry)
			}
		}
	}
	// Collect defs block by block, in node order.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			for _, id := range defIdents(n, info) {
				addDef(defObj(id, info), n, b)
			}
		}
	}
	n := len(r.Defs)
	gen := make([]bitset, len(g.Blocks))
	kill := make([]bitset, len(g.Blocks))
	for i := range g.Blocks {
		gen[i], kill[i] = newBitset(n), newBitset(n)
	}
	// Within a block the last def of an object survives; every def kills the
	// object's other defs.
	for bi, b := range g.Blocks {
		for di, d := range r.Defs {
			if d.Block != b {
				continue
			}
			gen[bi].set(di)
			for _, other := range defsOf[d.Obj] {
				if other != di {
					kill[bi].set(other)
				}
			}
		}
	}
	r.In = make([]bitset, len(g.Blocks))
	r.Out = make([]bitset, len(g.Blocks))
	for i := range g.Blocks {
		r.In[i], r.Out[i] = newBitset(n), newBitset(n)
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			in := newBitset(n)
			for _, p := range b.Preds {
				in.orInto(r.Out[p.Index])
			}
			r.In[b.Index].copyFrom(in)
			out := newBitset(n)
			out.copyFrom(in)
			for i := range out {
				out[i] = (out[i] &^ kill[b.Index][i]) | gen[b.Index][i]
			}
			if r.Out[b.Index].orInto(out) {
				changed = true
			}
		}
	}
	return r
}

// ReachesEntry reports whether definition di may reach the entry of block b.
func (r *ReachDefs) ReachesEntry(b *Block, di int) bool { return r.In[b.Index].has(di) }

// DefsOf returns the indices of the definitions of obj.
func (r *ReachDefs) DefsOf(obj types.Object) []int {
	var out []int
	for i, d := range r.Defs {
		if d.Obj == obj {
			out = append(out, i)
		}
	}
	return out
}

// paramFields lists receiver-free parameter fields of a function type.
func paramFields(ft *ast.FuncType) []*ast.Field {
	if ft.Params == nil {
		return nil
	}
	return ft.Params.List
}

// defIdents returns the identifiers a statement (re)defines: assignment and
// declaration left-hand sides, inc/dec targets, and range key/value bindings.
func defIdents(n ast.Node, info *types.Info) []*ast.Ident {
	var out []*ast.Ident
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				out = append(out, id)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						if id.Name != "_" {
							out = append(out, id)
						}
					}
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := s.X.(*ast.Ident); ok {
			out = append(out, id)
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				out = append(out, id)
			}
		}
	}
	return out
}

// defObj resolves the object an identifier defines or assigns.
func defObj(id *ast.Ident, info *types.Info) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// Derived computes the set of objects whose value may (transitively) derive
// from expressions matching seed, by fixpoint over the assignments of the
// whole function subtree — nested function literals included, so values
// captured by closures keep their taint. The analysis is flow-insensitive
// (a may-derive superset), which is the safe direction for the analyzers
// built on it.
func Derived(fn ast.Node, info *types.Info, seed func(ast.Expr) bool) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	tainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if ex, ok := n.(ast.Expr); ok && seed(ex) {
				found = true
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && derived[obj] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		mark := func(id *ast.Ident) {
			obj := defObj(id, info)
			if obj != nil && !derived[obj] {
				derived[obj] = true
				changed = true
			}
		}
		ast.Inspect(fn, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				// a, b := f(x): any tainted RHS taints every LHS (conservative
				// for multi-value assignments, exact for 1:1).
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && tainted(s.Rhs[i]) {
							mark(id)
						}
					}
				} else {
					any := false
					for _, rhs := range s.Rhs {
						if tainted(rhs) {
							any = true
						}
					}
					if any {
						for _, lhs := range s.Lhs {
							if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
								mark(id)
							}
						}
					}
				}
			case *ast.ValueSpec:
				for _, rhs := range s.Values {
					if tainted(rhs) {
						for _, id := range s.Names {
							if id.Name != "_" {
								mark(id)
							}
						}
					}
				}
			case *ast.RangeStmt:
				if tainted(s.X) {
					for _, e := range []ast.Expr{s.Key, s.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							mark(id)
						}
					}
				}
			}
			return true
		})
	}
	return derived
}

// Leaves returns the objects whose value may leave the function: returned,
// passed as a call argument, sent on a channel, assigned through a selector,
// index, or dereference (so it may be visible to the caller), or captured by
// a nested function literal. One level of direct evidence — aliases created
// by plain variable copies do not propagate, which is enough for the
// analyzers to separate loop-local garbage from escaping results.
func Leaves(fn ast.Node, info *types.Info) map[types.Object]bool {
	return escapeSet(fn, info, true)
}

// Retained is the variant of Leaves the hotalloc analyzer wants: objects
// whose value outlives the loop iteration that produced it — returned,
// stored through a selector/index/dereference, sent on a channel, captured
// by a closure, or appended into another slice. Plain call arguments do NOT
// count: a scratch buffer handed to a callee is still a scratch buffer, and
// hoisting it out of the loop stays correct.
func Retained(fn ast.Node, info *types.Info) map[types.Object]bool {
	return escapeSet(fn, info, false)
}

func escapeSet(fn ast.Node, info *types.Info, callArgs bool) map[types.Object]bool {
	leaves := make(map[types.Object]bool)
	markIdents := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					leaves[obj] = true
				}
			}
			return true
		})
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				markIdents(res)
			}
		case *ast.CallExpr:
			isAppend := false
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "append" && info.Uses[id] != nil && info.Uses[id].Pkg() == nil {
				isAppend = true
			}
			switch {
			case callArgs:
				for _, arg := range s.Args {
					markIdents(arg)
				}
			case isAppend:
				// append(dst, x...): the appended values are retained by dst.
				for _, arg := range s.Args[1:] {
					markIdents(arg)
				}
			}
		case *ast.SendStmt:
			markIdents(s.Value)
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if _, ok := lhs.(*ast.Ident); ok {
					continue
				}
				// Assignment through a selector, index, or dereference
				// publishes the RHS beyond the local frame.
				if i < len(s.Rhs) {
					markIdents(s.Rhs[i])
				}
			}
		case *ast.FuncLit:
			// Everything a closure references may outlive the enclosing
			// function's frame.
			ast.Inspect(s.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						leaves[obj] = true
					}
				}
				return true
			})
			return false
		}
		return true
	})
	return leaves
}
