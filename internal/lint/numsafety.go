package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// NumSafetyAnalyzer guards the numeric boundaries where WISE's pipeline
// silently corrupts data instead of failing. Three rules, all scoped to the
// numeric packages (numScopes):
//
//  1. Narrowing conversions of integer index/size arithmetic — int32(nnz),
//     int32(rows*cols) — truncate silently past 2^31. CSR column indices are
//     int32 by design (ColIdx), so conversions are legitimate when guarded:
//     a function that mentions the math.MaxInt32/MaxInt64 family or calls a
//     bounds-checking helper (name matching valid/fits/bound/check/limit/
//     overflow) is exempt; an unguarded conversion is a finding.
//
//  2. Float accumulators compared to an exact constant with == or != —
//     a sum of rounding errors is never exactly 0.0; the repo's floateq
//     analyzer covers general comparisons, this rule targets the
//     accumulate-then-test-zero shape it deliberately exempts elsewhere
//     (loop-carried += / -= variables).
//
//  3. Training entry points (Fit*/Train* on feature matrices) must reject
//     non-finite inputs: one NaN feature poisons every split threshold a
//     tree learns, with no error anywhere downstream. The function itself —
//     or a same-package callee one level deep (a Validate method) — must
//     call math.IsNaN or math.IsInf.
var NumSafetyAnalyzer = &Analyzer{
	Name:     "numsafety",
	Category: "numeric",
	Doc: "Unguarded int->int32/int16 truncations in index arithmetic, " +
		"float accumulators compared exactly to constants, and Fit/Train " +
		"entry points that never screen NaN/Inf inputs",
	Run: runNumSafety,
}

// numScopes are the internal/ packages where these rules apply: the sparse
// kernels and matrix formats (index arithmetic), the feature extractor and
// cost model (float accumulation), and the ML stack (training inputs).
var numScopes = map[string]bool{
	"kernels": true, "matrix": true, "features": true,
	"costmodel": true, "ml": true,
}

func inNumScope(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) && numScopes[segs[i+1]] {
			return true
		}
	}
	return false
}

func runNumSafety(pass *Pass) {
	if !inNumScope(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTruncations(pass, fd)
			checkAccumulatorCompare(pass, fd)
			checkTrainingGuard(pass, fd)
		}
	}
}

// --- rule 1: narrowing integer conversions ---

var boundsHelperRE = regexp.MustCompile(`(?i)(valid|fits|bound|check|limit|overflow)`)

// hasOverflowGuard reports whether the function shows any evidence of
// thinking about the narrowing: a math.MaxInt*/MaxUint* mention or a call to
// a bounds-checking helper.
func hasOverflowGuard(fd *ast.FuncDecl) bool {
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if strings.HasPrefix(e.Sel.Name, "MaxInt") || strings.HasPrefix(e.Sel.Name, "MaxUint") ||
				strings.HasPrefix(e.Sel.Name, "MinInt") {
				guarded = true
			}
		case *ast.CallExpr:
			if id := calleeFunc(e); id != nil && boundsHelperRE.MatchString(id.Name) {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

// narrowTarget reports whether t is an integer type narrower than int64/int.
func narrowTarget(t types.Type) (string, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	switch b.Kind() {
	case types.Int32, types.Int16, types.Int8, types.Uint32, types.Uint16, types.Uint8:
		return b.Name(), true
	}
	return "", false
}

// wideInt reports whether t is int or int64 — the types whose values can
// exceed a 32-bit target.
func wideInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Int || b.Kind() == types.Int64
}

func checkTruncations(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	guarded := hasOverflowGuard(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		// A conversion is a call whose Fun resolves to a type.
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		name, narrow := narrowTarget(tv.Type)
		if !narrow {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		argTV, ok := info.Types[arg]
		if !ok || !wideInt(argTV.Type) {
			return true
		}
		// Constants the type-checker already proved in range are fine.
		if argTV.Value != nil {
			return true
		}
		// Single-byte/char-ish conversions of loop counters over small
		// literals are noise; only flag arguments that look like index or
		// size arithmetic: a binary expression, or an identifier whose name
		// suggests a dimension.
		if !indexLike(arg) {
			return true
		}
		if guarded {
			return true
		}
		pass.Reportf(call.Pos(), "%s(%s) truncates silently past %s range; bound-check the value (compare against math.Max%s) or keep the wide type",
			name, exprText(arg), name, strings.ToUpper(name[:1])+name[1:])
		return true
	})
}

// indexLike reports whether the conversion argument is index/size-shaped:
// arithmetic, a len/cap call, or an identifier/selector named like a
// dimension (row, col, nnz, idx, len, count, size, n, dim, stride, offset).
var dimNameRE = regexp.MustCompile(`(?i)(row|col|nnz|idx|index|len|count|size|dim|stride|off|pos|width|height|^n$|^m$|^k$)`)

func indexLike(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		return true
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return true
		}
	case *ast.Ident:
		return dimNameRE.MatchString(x.Name)
	case *ast.SelectorExpr:
		return dimNameRE.MatchString(x.Sel.Name)
	}
	return false
}

// exprText renders a short expression for the message.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.BinaryExpr:
		return exprText(x.X) + " " + x.Op.String() + " " + exprText(x.Y)
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			return id.Name + "(...)"
		}
	}
	return "value"
}

// --- rule 2: float accumulators compared exactly ---

func checkAccumulatorCompare(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Pass 1: objects accumulated with += or -= (or x = x + ...) of float
	// type anywhere in the function.
	accs := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
		case token.ASSIGN:
			// x = x + y / x = x - y
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			be, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
				return true
			}
			lid, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			xid, ok := ast.Unparen(be.X).(*ast.Ident)
			if !ok || xid.Name != lid.Name {
				return true
			}
		default:
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := defOrUse(info, id)
		if obj == nil {
			return true
		}
		if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			accs[obj] = true
		}
		return true
	})
	if len(accs) == 0 {
		return
	}

	// Pass 2: exact comparisons of an accumulator against a constant.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		var accID *ast.Ident
		var other ast.Expr
		if id, ok := ast.Unparen(be.X).(*ast.Ident); ok && accs[defOrUse(info, id)] {
			accID, other = id, be.Y
		} else if id, ok := ast.Unparen(be.Y).(*ast.Ident); ok && accs[defOrUse(info, id)] {
			accID, other = id, be.X
		}
		if accID == nil {
			return true
		}
		tv, ok := info.Types[ast.Unparen(other)]
		if !ok || tv.Value == nil || tv.Value.Kind() == constant.Unknown {
			return true
		}
		pass.Reportf(be.Pos(), "float accumulator %q compared with %s against an exact constant; accumulated rounding error makes this unreliable — compare against a tolerance",
			accID.Name, be.Op)
		return true
	})
}

// --- rule 3: training entry points must screen non-finite inputs ---

// checkTrainingGuard flags exported Fit*/Train* functions that take float
// slice data and neither call math.IsNaN/IsInf themselves nor via a
// same-package callee one level deep (e.g. a Validate method).
func checkTrainingGuard(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !strings.HasPrefix(name, "Fit") && !strings.HasPrefix(name, "Train") {
		return
	}
	if !ast.IsExported(name) {
		return
	}
	if !takesFloatData(pass.Pkg.Info, fd) {
		return
	}
	if callsFiniteCheck(pass, fd, 0) {
		return
	}
	pass.Reportf(fd.Pos(), "%s trains on float data but never screens for NaN/Inf: one non-finite feature silently poisons the model; validate inputs with math.IsNaN/math.IsInf",
		name)
}

// takesFloatData reports whether any parameter type contains a float slice
// ([]float64, [][]float32, or a named struct with such a field).
func takesFloatData(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t != nil && containsFloatSlice(t, 0) {
			return true
		}
	}
	return false
}

func containsFloatSlice(t types.Type, depth int) bool {
	if depth > 3 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			return true
		}
		return containsFloatSlice(u.Elem(), depth+1)
	case *types.Pointer:
		return containsFloatSlice(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloatSlice(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// callsFiniteCheck reports whether the function calls math.IsNaN/math.IsInf,
// directly or through one level of same-package callees.
func callsFiniteCheck(pass *Pass, fd *ast.FuncDecl, depth int) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := resolvedFunc(info, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "math" && (fn.Name() == "IsNaN" || fn.Name() == "IsInf") {
			found = true
			return false
		}
		if depth >= 1 {
			return true
		}
		// Same-package callee: recurse one level (covers d.Validate()).
		if fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Types.Path() {
			return true
		}
		if decl := declOf(pass.Pkg, fn); decl != nil && decl.Body != nil {
			if callsFiniteCheck(pass, decl, depth+1) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// declOf finds the *ast.FuncDecl for a same-package function object.
func declOf(pkg *Package, fn *types.Func) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pkg.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}
