package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// ErrDropAnalyzer flags call statements that silently discard an error
// result in production code. A dropped error in the corpus/labeling/model
// persistence paths turns an I/O failure into corrupted training data.
// Writers that are documented never to fail (strings.Builder, bytes.Buffer,
// fmt printing to stdout/stderr) are allowed; everything else must handle
// the error, assign it explicitly (err/_), or carry a //lint:ignore with a
// rationale. Deferred calls (the idiomatic defer f.Close() on read paths)
// are deliberately out of scope.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flags expression statements that discard an error return",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(info, call) || errAllowlisted(info, call) {
				return true
			}
			pass.Reportf(st.Pos(), "error returned by %s is discarded; handle it or assign it explicitly",
				exprString(pass, call.Fun))
			return true
		})
	}
}

// returnsError reports whether the call's result is, or ends with, an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType)
	default:
		return types.Identical(t, errType)
	}
}

// errAllowlisted reports whether the call is one of the never-fails writer
// idioms that Go code conventionally does not check.
func errAllowlisted(info *types.Info, call *ast.CallExpr) bool {
	fn := resolvedFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()

	// fmt.Print/Printf/Println write to stdout.
	if pkg == "fmt" && (name == "Print" || name == "Printf" || name == "Println") {
		return true
	}
	// fmt.Fprint* when the destination cannot fail: the standard out/err
	// streams (best-effort diagnostics) or in-memory buffers.
	if pkg == "fmt" && len(call.Args) > 0 &&
		(name == "Fprint" || name == "Fprintf" || name == "Fprintln") {
		return isStdStream(call.Args[0]) || isMemWriter(info, call.Args[0])
	}
	// Methods on strings.Builder / bytes.Buffer are documented to never
	// return a non-nil error.
	if recv := receiverNamed(fn); (recv == "Builder" && pkg == "strings") || (recv == "Buffer" && pkg == "bytes") {
		return true
	}
	return false
}

// isStdStream reports whether e is the selector os.Stdout or os.Stderr.
func isStdStream(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "os" && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// isMemWriter reports whether e has type *strings.Builder or *bytes.Buffer.
func isMemWriter(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// exprString renders an expression as source text for messages.
func exprString(pass *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
