package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked, non-test package of the module (or a fixture
// package loaded with LoadExtraDir). Test files (_test.go) are excluded by
// design: every analyzer in this suite checks production code only, and
// leaving tests out keeps the loader free of the external-test-package
// complications go/packages exists to solve.
type Package struct {
	Path      string // import path, e.g. "wise/internal/ml"
	Dir       string
	Filenames []string
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Module is the parsed and type-checked module, packages in dependency
// (topological) order.
type Module struct {
	Root     string // absolute directory containing go.mod
	ModPath  string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package

	byPath map[string]*Package
	std    types.Importer
	stdMu  sync.Mutex // serializes std importer use: gc export-data readers are not concurrency-safe

	// Interprocedural analysis state (callgraph, guarded-by registry,
	// entry-held lock sets — see interproc.go), built lazily: once for the
	// module packages, and once per fixture package layered on top of them.
	analysisOnce  sync.Once
	analysis      *modAnalysis
	extraMu       sync.Mutex
	extraAnalyses map[*Package]*modAnalysis
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at or above dir, using only the standard library (no go/packages):
// directories are walked directly, module-internal imports are resolved
// against the walked set, and standard-library imports come from the
// compiler's export data (with a from-source fallback).
func LoadModule(dir string) (*Module, error) { return LoadModuleJobs(dir, 1) }

// LoadModuleJobs is LoadModule with a parallelism knob: with jobs > 1,
// directories are parsed concurrently and packages are type-checked by a
// worker pool walking the import DAG in dependency order (independent
// subtrees check concurrently). The resulting Module is identical to a
// serial load — Packages is always in the deterministic topological order,
// so finding order cannot depend on scheduling. jobs <= 1 is the serial
// path.
func LoadModuleJobs(dir string, jobs int) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:    root,
		ModPath: modPath,
		Fset:    token.NewFileSet(),
		byPath:  make(map[string]*Package),
	}
	m.std = importer.ForCompiler(m.Fset, "gc", nil)

	dirs, err := m.packageDirs()
	if err != nil {
		return nil, err
	}
	parsed, err := m.parseDirs(dirs, jobs)
	if err != nil {
		return nil, err
	}
	order, err := topoOrder(parsed, modPath)
	if err != nil {
		return nil, err
	}
	// byPath is fully populated before any type-check so the importer can
	// resolve module-internal imports; DAG scheduling guarantees a package's
	// imports are checked (Types non-nil) before the package itself.
	for _, pkg := range parsed {
		m.byPath[pkg.Path] = pkg
	}
	if jobs <= 1 {
		for _, path := range order {
			if err := m.check(parsed[path]); err != nil {
				return nil, err
			}
		}
	} else if err := m.checkParallel(parsed, order, jobs); err != nil {
		return nil, err
	}
	for _, path := range order {
		m.Packages = append(m.Packages, parsed[path])
	}
	return m, nil
}

// parseDirs parses every candidate directory, with jobs-wide parallelism
// (token.FileSet is documented as safe for concurrent use).
func (m *Module) parseDirs(dirs []string, jobs int) (map[string]*Package, error) {
	parsed := make(map[string]*Package) // import path -> parsed, not yet checked
	if jobs <= 1 {
		for _, d := range dirs {
			pkg, err := m.parseDir(d, m.importPathFor(d))
			if err != nil {
				return nil, err
			}
			if pkg != nil {
				parsed[pkg.Path] = pkg
			}
		}
		return parsed, nil
	}
	// Each goroutine writes only its own slice slot, so the fan-out needs no
	// lock at all; the map is assembled serially afterwards.
	results := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, jobs)
	for i, d := range dirs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = m.parseDir(d, m.importPathFor(d))
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, pkg := range results {
		if pkg != nil {
			parsed[pkg.Path] = pkg
		}
	}
	return parsed, nil
}

// checkParallel type-checks the parsed packages with a worker pool driven by
// the import DAG: a package becomes ready once all its module-internal
// imports are checked. order is the full topological order (used only for
// the dependency edges; completion order is nondeterministic and does not
// matter, Packages is rebuilt from order afterwards).
func (m *Module) checkParallel(parsed map[string]*Package, order []string, jobs int) error {
	deps := moduleDeps(parsed)
	dependents := make(map[string][]string, len(parsed))
	waiting := make(map[string]int, len(parsed))
	for path, ds := range deps {
		waiting[path] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], path)
		}
	}
	ready := make(chan string, len(parsed))
	for _, path := range order {
		if waiting[path] == 0 {
			ready <- path
		}
	}
	var (
		mu       sync.Mutex
		firstErr error
		done     int
		closed   bool
		wg       sync.WaitGroup
	)
	finish := func() { // callers hold mu
		if !closed {
			closed = true
			close(ready)
		}
	}
	if jobs > len(parsed) {
		jobs = len(parsed)
	}
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range ready {
				err := m.check(parsed[path])
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					finish() // stop scheduling; in-flight checks drain
					mu.Unlock()
					return
				}
				done++
				for _, dep := range dependents[path] {
					//lint:ignore goroutinesafety waiting is only ever written under mu (held here); the analyzer cannot see lock guards on captured maps
					waiting[dep]--
					if waiting[dep] == 0 && !closed {
						//lint:ignore waitblock ready is buffered to len(parsed) with at most one send per package, so this send can never park while holding mu
						ready <- dep
					}
				}
				if done == len(parsed) {
					finish()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// moduleDeps maps each parsed package to its module-internal imports.
func moduleDeps(parsed map[string]*Package) map[string][]string {
	deps := make(map[string][]string, len(parsed))
	for path, pkg := range parsed {
		seen := make(map[string]bool)
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if _, ok := parsed[ip]; ok && !seen[ip] {
					seen[ip] = true
					deps[path] = append(deps[path], ip)
				}
			}
		}
		sort.Strings(deps[path])
	}
	return deps
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// LoadExtraDir parses and type-checks one directory outside the normal
// module walk (an analyzer test fixture under testdata/) as a package with
// the given synthetic import path. The fixture may import module packages;
// they resolve against the already-loaded module.
func (m *Module) LoadExtraDir(dir, importPath string) (*Package, error) {
	pkg, err := m.parseDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if err := m.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// LoadFixture loads a testdata fixture directory as a package. The import
// path comes from a "//lint:path <path>" directive in any of the fixture's
// files (so fixtures can opt into path-scoped analyzers like determinism),
// defaulting to "fixture/<dirname>".
func (m *Module) LoadFixture(dir string) (*Package, error) {
	importPath := "fixture/" + filepath.Base(dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "//lint:path "); ok {
				importPath = strings.TrimSpace(rest)
			}
		}
	}
	return m.LoadExtraDir(dir, importPath)
}

// packageDirs lists every directory under the module root that may hold a
// package, skipping hidden directories and testdata.
func (m *Module) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a directory under the module root to its import path.
func (m *Module) importPathFor(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.ModPath
	}
	return m.ModPath + "/" + filepath.ToSlash(rel)
}

// parseDir parses the non-test Go files of one directory. Returns nil if the
// directory holds no non-test Go files.
func (m *Module) parseDir(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", full, err)
		}
		pkg.Filenames = append(pkg.Filenames, full)
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// check type-checks one parsed package against the module's already-checked
// packages and the standard library.
func (m *Module) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &moduleImporter{m: m},
		Error:    func(error) {}, // collect via the returned error only
	}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter resolves module-internal imports against the loaded set and
// everything else through the standard-library importer.
type moduleImporter struct {
	m *Module
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg := mi.m.byPath[path]; pkg != nil {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import cycle or unchecked package %s", path)
		}
		return pkg.Types, nil
	}
	if strings.HasPrefix(path, mi.m.ModPath+"/") || path == mi.m.ModPath {
		return nil, fmt.Errorf("lint: module package %s not loaded", path)
	}
	// The std importers cache mutable state and are not safe for the
	// concurrent Check calls the parallel loader issues.
	mi.m.stdMu.Lock()
	defer mi.m.stdMu.Unlock()
	tp, err := mi.m.std.Import(path)
	if err == nil {
		return tp, nil
	}
	// Fallback: type-check the standard-library package from source (covers
	// toolchains that ship no export data for some packages).
	src := importer.ForCompiler(mi.m.Fset, "source", nil)
	tp2, err2 := src.Import(path)
	if err2 != nil {
		return nil, fmt.Errorf("lint: importing %s: %v (source fallback: %v)", path, err, err2)
	}
	return tp2, nil
}

// topoOrder sorts module package paths so every package appears after its
// module-internal imports.
func topoOrder(parsed map[string]*Package, modPath string) ([]string, error) {
	deps := make(map[string][]string, len(parsed))
	for path, pkg := range parsed {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if _, ok := parsed[ip]; ok {
					deps[path] = append(deps[path], ip)
				} else if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					return nil, fmt.Errorf("lint: %s imports %s, which has no non-test Go files", path, ip)
				}
			}
		}
	}
	const (
		white = iota // unvisited
		gray         // in progress
		black        // done
	)
	state := make(map[string]int, len(parsed))
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = gray
		ds := append([]string(nil), deps[path]...)
		sort.Strings(ds)
		for _, d := range ds {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(parsed))
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
