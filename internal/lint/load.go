package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked, non-test package of the module (or a fixture
// package loaded with LoadExtraDir). Test files (_test.go) are excluded by
// design: every analyzer in this suite checks production code only, and
// leaving tests out keeps the loader free of the external-test-package
// complications go/packages exists to solve.
type Package struct {
	Path      string // import path, e.g. "wise/internal/ml"
	Dir       string
	Filenames []string
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Module is the parsed and type-checked module, packages in dependency
// (topological) order.
type Module struct {
	Root     string // absolute directory containing go.mod
	ModPath  string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package

	byPath map[string]*Package
	std    types.Importer

	// Interprocedural analysis state (callgraph, guarded-by registry,
	// entry-held lock sets — see interproc.go), built lazily: once for the
	// module packages, and once per fixture package layered on top of them.
	analysisOnce  sync.Once
	analysis      *modAnalysis
	extraMu       sync.Mutex
	extraAnalyses map[*Package]*modAnalysis
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at or above dir, using only the standard library (no go/packages):
// directories are walked directly, module-internal imports are resolved
// against the walked set, and standard-library imports come from the
// compiler's export data (with a from-source fallback).
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:    root,
		ModPath: modPath,
		Fset:    token.NewFileSet(),
		byPath:  make(map[string]*Package),
	}
	m.std = importer.ForCompiler(m.Fset, "gc", nil)

	dirs, err := m.packageDirs()
	if err != nil {
		return nil, err
	}
	parsed := make(map[string]*Package) // import path -> parsed, not yet checked
	for _, d := range dirs {
		pkg, err := m.parseDir(d, m.importPathFor(d))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			parsed[pkg.Path] = pkg
		}
	}
	order, err := topoOrder(parsed, modPath)
	if err != nil {
		return nil, err
	}
	for _, path := range order {
		pkg := parsed[path]
		if err := m.check(pkg); err != nil {
			return nil, err
		}
		m.byPath[pkg.Path] = pkg
		m.Packages = append(m.Packages, pkg)
	}
	return m, nil
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// LoadExtraDir parses and type-checks one directory outside the normal
// module walk (an analyzer test fixture under testdata/) as a package with
// the given synthetic import path. The fixture may import module packages;
// they resolve against the already-loaded module.
func (m *Module) LoadExtraDir(dir, importPath string) (*Package, error) {
	pkg, err := m.parseDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if err := m.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// LoadFixture loads a testdata fixture directory as a package. The import
// path comes from a "//lint:path <path>" directive in any of the fixture's
// files (so fixtures can opt into path-scoped analyzers like determinism),
// defaulting to "fixture/<dirname>".
func (m *Module) LoadFixture(dir string) (*Package, error) {
	importPath := "fixture/" + filepath.Base(dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "//lint:path "); ok {
				importPath = strings.TrimSpace(rest)
			}
		}
	}
	return m.LoadExtraDir(dir, importPath)
}

// packageDirs lists every directory under the module root that may hold a
// package, skipping hidden directories and testdata.
func (m *Module) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a directory under the module root to its import path.
func (m *Module) importPathFor(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.ModPath
	}
	return m.ModPath + "/" + filepath.ToSlash(rel)
}

// parseDir parses the non-test Go files of one directory. Returns nil if the
// directory holds no non-test Go files.
func (m *Module) parseDir(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", full, err)
		}
		pkg.Filenames = append(pkg.Filenames, full)
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// check type-checks one parsed package against the module's already-checked
// packages and the standard library.
func (m *Module) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &moduleImporter{m: m},
		Error:    func(error) {}, // collect via the returned error only
	}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter resolves module-internal imports against the loaded set and
// everything else through the standard-library importer.
type moduleImporter struct {
	m *Module
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg := mi.m.byPath[path]; pkg != nil {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import cycle or unchecked package %s", path)
		}
		return pkg.Types, nil
	}
	if strings.HasPrefix(path, mi.m.ModPath+"/") || path == mi.m.ModPath {
		return nil, fmt.Errorf("lint: module package %s not loaded", path)
	}
	tp, err := mi.m.std.Import(path)
	if err == nil {
		return tp, nil
	}
	// Fallback: type-check the standard-library package from source (covers
	// toolchains that ship no export data for some packages).
	src := importer.ForCompiler(mi.m.Fset, "source", nil)
	tp2, err2 := src.Import(path)
	if err2 != nil {
		return nil, fmt.Errorf("lint: importing %s: %v (source fallback: %v)", path, err, err2)
	}
	return tp2, nil
}

// topoOrder sorts module package paths so every package appears after its
// module-internal imports.
func topoOrder(parsed map[string]*Package, modPath string) ([]string, error) {
	deps := make(map[string][]string, len(parsed))
	for path, pkg := range parsed {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if _, ok := parsed[ip]; ok {
					deps[path] = append(deps[path], ip)
				} else if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					return nil, fmt.Errorf("lint: %s imports %s, which has no non-test Go files", path, ip)
				}
			}
		}
	}
	const (
		white = iota // unvisited
		gray         // in progress
		black        // done
	)
	state := make(map[string]int, len(parsed))
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = gray
		ds := append([]string(nil), deps[path]...)
		sort.Strings(ds)
		for _, d := range ds {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(parsed))
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
