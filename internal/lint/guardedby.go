package lint

import (
	"go/ast"
	"go/types"

	"wise/internal/lint/callgraph"
)

// GuardedByAnalyzer enforces `// guarded by <lock>` field annotations: every
// read or write of an annotated field must happen with the named lock
// provably held (must-analysis, including caller-provided entry-held locks
// from the interprocedural fixpoint), and writes to fields guarded by a
// sync.RWMutex need the write lock, not just RLock. Malformed annotations are
// themselves findings — a guard that names no mutex protects nothing.
var GuardedByAnalyzer = &Analyzer{
	Name:        "guardedby",
	Category:    "concurrency",
	ModuleFacts: true,
	Doc: "Struct fields annotated `// guarded by <lock>` (a sibling mutex field or " +
		"a package-level mutex) must only be accessed with that lock held; writes " +
		"under an RWMutex need the write lock. The check is interprocedural: a " +
		"private method whose every caller holds the lock is analyzed as " +
		"lock-held on entry.",
	Run: runGuardedBy,
}

func runGuardedBy(pass *Pass) {
	a := pass.Mod.analysisFor(pass.Pkg)
	for _, bg := range a.badGuards {
		if inPackageFile(pass, bg.file) {
			pass.Reportf(bg.pos, "%s", bg.reason)
		}
	}
	if len(a.guarded) == 0 {
		return
	}
	for _, u := range a.units[pass.Pkg] {
		checkGuardedAccesses(pass, a, u)
	}
}

func inPackageFile(pass *Pass, file string) bool {
	for _, f := range pass.Pkg.Filenames {
		if f == file {
			return true
		}
	}
	return false
}

func checkGuardedAccesses(pass *Pass, a *modAnalysis, u *lockUnit) {
	info := pass.Pkg.Info
	writes := writtenSelectors(u)
	walkUnitDirect(u, func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		field, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return
		}
		spec, guarded := a.guarded[field]
		if !guarded {
			return
		}
		verb := "read"
		if writes[sel] {
			verb = "written"
		}
		required := spec.lock
		if !spec.global {
			base := callgraph.RenderPath(sel.X)
			if base == "" {
				pass.Reportf(sel.Pos(),
					"%s.%s is guarded by %s, but the access path has no stable root; the guard cannot be verified — bind the struct to a variable first",
					spec.owner, field.Name(), spec.lock)
				return
			}
			required = base + "." + spec.lock
		}
		held := a.heldAt(pass.Pkg, u, sel.Pos())
		h, ok := held[required]
		if !ok {
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %s but %s without it held on every path here",
				spec.owner, field.Name(), required, verb)
			return
		}
		if writes[sel] && !h.Write {
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %s but written while only the read lock is held; RLock does not exclude other readers",
				spec.owner, field.Name(), required)
		}
	})
}

// walkUnitDirect visits the nodes directly in a unit's body, skipping nested
// function literals (each literal is its own unit with its own lock flow).
func walkUnitDirect(u *lockUnit, fn func(ast.Node)) {
	ast.Inspect(u.body(), func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.lit {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// writtenSelectors collects the selector expressions a unit writes through:
// assignment targets, ++/--, and address-taken fields (an escaping &x.f can
// be written anywhere, so it counts as a write site). Index and deref layers
// are peeled — s.buf[i] = v writes s.buf.
func writtenSelectors(u *lockUnit) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				out[x] = true
				return
			default:
				return
			}
		}
	}
	walkUnitDirect(u, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				mark(x.X)
			}
		}
	})
	return out
}
