package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineSafetyAnalyzer checks the worker-pool patterns the parallel
// paths (kernels.parallelUnits, ml's fold pool, perf's labeling pool) are
// built on:
//
//   - a goroutine closing over a loop variable must take it as a parameter
//     instead (per-iteration clarity, and correctness on pre-1.22
//     toolchains);
//   - sync.WaitGroup.Add must happen before the goroutine is spawned, never
//     inside it, or Wait can return early;
//   - a write s[i] = v to a captured slice from inside a goroutine is only
//     race-free when the index is goroutine-local (index-disjoint
//     partitioning, the invariant the parallel CV depends on); writes to
//     captured maps are never safe without a lock.
var GoroutineSafetyAnalyzer = &Analyzer{
	Name: "goroutinesafety",
	Doc:  "flags loop-variable capture, WaitGroup.Add inside goroutines, and non-partitioned shared writes",
	Run:  runGoroutineSafety,
}

func runGoroutineSafety(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		loopVars := collectLoopVars(info, file)
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineBody(pass, lit, loopVars)
			return true
		})
	}
}

// collectLoopVars gathers the objects of every range/for-init loop variable
// in the file.
func collectLoopVars(info *types.Info, file *ast.File) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			addIdent(st.Key)
			if st.Value != nil {
				addIdent(st.Value)
			}
		case *ast.ForStmt:
			if init, ok := st.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					addIdent(lhs)
				}
			}
		}
		return true
	})
	return vars
}

func checkGoroutineBody(pass *Pass, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	info := pass.Pkg.Info
	localTo := func(obj types.Object) bool {
		return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}

	reportedLoopVar := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.Ident:
			obj := info.Uses[t]
			if obj != nil && loopVars[obj] && !localTo(obj) && !reportedLoopVar[obj] {
				reportedLoopVar[obj] = true
				pass.Reportf(t.Pos(),
					"goroutine closes over loop variable %s; pass it as a parameter (go func(%s ...) { ... }(%s))",
					obj.Name(), obj.Name(), obj.Name())
			}

		case *ast.CallExpr:
			// WaitGroup.Add inside the spawned goroutine races with Wait.
			fn := resolvedFunc(info, t)
			if fn != nil && fn.Name() == "Add" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				if recv := receiverNamed(fn); recv == "WaitGroup" {
					pass.Reportf(t.Pos(),
						"WaitGroup.Add inside the spawned goroutine can run after Wait returns; call Add before the go statement")
				}
			}

		case *ast.AssignStmt:
			for _, lhs := range t.Lhs {
				checkSharedIndexWrite(pass, lhs, localTo)
			}
		case *ast.IncDecStmt:
			checkSharedIndexWrite(pass, t.X, localTo)
		}
		return true
	})
}

// checkSharedIndexWrite flags writes through captured slices with fully
// captured (or constant) indices, and any write through a captured map.
func checkSharedIndexWrite(pass *Pass, lhs ast.Expr, localTo func(types.Object) bool) {
	info := pass.Pkg.Info
	for {
		switch t := lhs.(type) {
		case *ast.ParenExpr:
			lhs = t.X
			continue
		case *ast.SelectorExpr:
			lhs = t.X
			continue
		case *ast.StarExpr:
			lhs = t.X
			continue
		case *ast.IndexExpr:
			base, ok := ast.Unparen(t.X).(*ast.Ident)
			if ok {
				obj := info.Uses[base]
				if obj != nil && !localTo(obj) {
					switch info.TypeOf(base).Underlying().(type) {
					case *types.Map:
						pass.Reportf(t.Pos(),
							"write to captured map %s from a goroutine; map writes race — guard with a lock or restructure",
							base.Name)
					case *types.Slice:
						if !indexIsLocal(info, t.Index, localTo) {
							pass.Reportf(t.Pos(),
								"write to captured slice %s with a non-goroutine-local index; partition writes by a goroutine-local index or synchronize",
								base.Name)
						}
					}
				}
			}
			lhs = t.X
			continue
		}
		return
	}
}

// indexIsLocal reports whether the index expression involves at least one
// identifier declared inside the goroutine (parameter or local) — the
// signature of index-disjoint partitioning.
func indexIsLocal(info *types.Info, idx ast.Expr, localTo func(types.Object) bool) bool {
	local := false
	ast.Inspect(idx, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar && localTo(obj) {
					local = true
				}
			}
		}
		return true
	})
	return local
}

// receiverNamed returns the name of the method's receiver named type, or "".
func receiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
