package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The module is loaded (parsed + fully type-checked) once and shared by
// every test; loading is by far the dominant cost.
var (
	modOnce sync.Once
	mod     *Module
	modErr  error
)

func repoModule(t *testing.T) *Module {
	t.Helper()
	modOnce.Do(func() {
		mod, modErr = LoadModule(".")
	})
	if modErr != nil {
		t.Fatalf("LoadModule: %v", modErr)
	}
	return mod
}

func TestLoadModule(t *testing.T) {
	m := repoModule(t)
	if m.ModPath != "wise" {
		t.Fatalf("module path = %q, want wise", m.ModPath)
	}
	for _, path := range []string{"wise/internal/obs", "wise/internal/ml", "wise/internal/matrix", "wise"} {
		if m.Lookup(path) == nil {
			t.Errorf("package %s not loaded", path)
		}
	}
	for _, pkg := range m.Packages {
		if pkg.Types == nil || pkg.Info == nil {
			t.Errorf("package %s not type-checked", pkg.Path)
		}
		for _, name := range pkg.Filenames {
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("test file %s loaded; loader must skip tests", name)
			}
		}
	}
}

// wantMarkers scans fixture files for trailing "// want <analyzer>" comments
// and returns the expected file:line set for one analyzer.
func wantMarkers(t *testing.T, dir, analyzer string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), "// want "+analyzer) {
				abs, _ := filepath.Abs(path)
				want[fmt.Sprintf("%s:%d", abs, line)] = true
			}
		}
		f.Close()
	}
	return want
}

// TestFixtures checks, for every analyzer, that its fixture package yields a
// finding on exactly the lines marked "// want <name>" — at least one true
// positive — and nothing anywhere else (the clean file and the suppressed
// cases stay silent).
func TestFixtures(t *testing.T) {
	m := repoModule(t)
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			pkg, err := m.LoadFixture(dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			want := wantMarkers(t, dir, a.Name)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no want markers; every analyzer needs a true positive", dir)
			}
			got := make(map[string]bool)
			for _, f := range RunPackage(m, pkg, []*Analyzer{a}) {
				if f.Analyzer != a.Name {
					t.Errorf("unexpected %s finding in %s fixture: %s", f.Analyzer, a.Name, f)
					continue
				}
				got[fmt.Sprintf("%s:%d", f.File, f.Line)] = true
			}
			for loc := range want {
				if !got[loc] {
					t.Errorf("missing finding at %s", loc)
				}
			}
			for loc := range got {
				if !want[loc] {
					t.Errorf("unexpected finding at %s", loc)
				}
			}
		})
	}
}

// TestModuleClean is the acceptance gate in test form: the final tree must
// be free of unsuppressed findings, so wise-lint exits 0 in check.sh.
func TestModuleClean(t *testing.T) {
	m := repoModule(t)
	findings := Run(m, All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d finding(s); fix or //lint:ignore with a rationale", len(findings))
	}
}

func TestSuppression(t *testing.T) {
	dirs := []ignoreDirective{
		{file: "a.go", line: 10, analyzer: "floateq", reason: "why"},
		{file: "a.go", line: 20, analyzer: "*", reason: "blanket"},
	}
	cases := []struct {
		f    Finding
		want bool
	}{
		{Finding{Analyzer: "floateq", File: "a.go", Line: 10}, true},  // same line
		{Finding{Analyzer: "floateq", File: "a.go", Line: 11}, true},  // line below directive
		{Finding{Analyzer: "floateq", File: "a.go", Line: 12}, false}, // too far
		{Finding{Analyzer: "errdrop", File: "a.go", Line: 10}, false}, // other analyzer
		{Finding{Analyzer: "errdrop", File: "a.go", Line: 21}, true},  // wildcard
		{Finding{Analyzer: "floateq", File: "b.go", Line: 10}, false}, // other file
	}
	for _, c := range cases {
		if got := suppressed(c.f, dirs); got != c.want {
			t.Errorf("suppressed(%+v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestMalformedIgnoreReported(t *testing.T) {
	m := repoModule(t)
	dir := t.TempDir()
	src := `package p

func f() int {
	//lint:ignore floateq
	return 1
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := m.LoadExtraDir(dir, "fixture/malformed")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackage(m, pkg, nil)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "malformed") {
		t.Fatalf("want one malformed-directive finding, got %v", findings)
	}
}

func TestFindingsSortedAndJSON(t *testing.T) {
	fs := []Finding{
		{Analyzer: "b", File: "z.go", Line: 2, Col: 1},
		{Analyzer: "a", File: "a.go", Line: 9, Col: 3},
		{Analyzer: "a", File: "a.go", Line: 1, Col: 7},
	}
	sortFindings(fs)
	if !sort.SliceIsSorted(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		return fs[i].Line < fs[j].Line
	}) {
		t.Fatalf("findings not sorted: %v", fs)
	}
	var b strings.Builder
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("nil findings must encode as [], got %q", b.String())
	}
}
