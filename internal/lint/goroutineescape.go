package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"wise/internal/lint/cfg"
)

// GoroutineEscapeAnalyzer extends goroutinesafety past the enclosing
// function: a variable written inside a spawned goroutine (directly, or by a
// module function the goroutine calls that writes through a pointer
// parameter or its receiver) and written again on the spawning side AFTER
// the go statement is a data race unless a happens-before edge separates the
// two. The spawning-side scan walks the CFG forward from the go statement
// and stops at synchronization barriers (WaitGroup.Wait, any channel
// operation, select, or a call into a module function that may block);
// writes on both sides under a common held lock, and index-disjoint slice
// writes partitioned by a goroutine-local index, are exempt.
var GoroutineEscapeAnalyzer = &Analyzer{
	Name:        "goroutineescape",
	Category:    "concurrency",
	ModuleFacts: true,
	Doc: "A value written inside a spawned goroutine and written again by the " +
		"spawner after the go statement, with no synchronization barrier between " +
		"the go and the later write, races. Interprocedural: writes made by " +
		"module functions the goroutine calls (pointer parameters, receivers) " +
		"count as goroutine-side writes.",
	Run: runGoroutineEscape,
}

func runGoroutineEscape(pass *Pass) {
	a := pass.Mod.analysisFor(pass.Pkg)
	for _, u := range a.units[pass.Pkg] {
		var goStmts []*ast.GoStmt
		walkUnitDirect(u, func(n ast.Node) {
			if gs, ok := n.(*ast.GoStmt); ok {
				goStmts = append(goStmts, gs)
			}
		})
		for _, gs := range goStmts {
			checkGoroutineEscape(pass, a, u, gs)
		}
	}
}

// goSideWrite is one write performed on the goroutine side of a go statement.
type goSideWrite struct {
	pos        token.Pos
	indexLocal bool // write through an index local to the goroutine (partitioned)
}

func checkGoroutineEscape(pass *Pass, a *modAnalysis, u *lockUnit, gs *ast.GoStmt) {
	info := pass.Pkg.Info
	targets := goroutineWrites(a, info, gs)
	if len(targets) == 0 {
		return
	}
	flow := a.flowFor(pass.Pkg, u)
	goPos := pass.Fset.Position(gs.Pos())

	// Lock keys held at the goroutine-side writes (frame-local; a captured
	// mutex renders to the same path in both frames) plus the type-level
	// closure of everything a spawned call may acquire.
	goHeld := goroutineHeldKeys(a, pass.Pkg, gs, targets)

	for _, w := range outerWritesAfterGo(a, flow.g, info, gs, targets) {
		gw := targets[w.obj]
		if gw.indexLocal && w.indexWrite {
			continue // partitioned by goroutine-local index on both sides
		}
		outerHeld := a.heldAt(pass.Pkg, u, w.pos)
		common := false
		for k := range outerHeld {
			if goHeld[k] {
				common = true
				break
			}
		}
		for _, h := range outerHeld {
			if h.TypeKey != "" && goHeld[h.TypeKey] {
				common = true
				break
			}
		}
		if common {
			continue
		}
		pass.Reportf(w.pos,
			"%s is written here and inside the goroutine started at %s:%d, with no synchronization barrier between the go statement and this write; the writes race",
			w.obj.Name(), filepath.Base(goPos.Filename), goPos.Line)
	}
}

// goroutineWrites collects the outer-declared variables the spawned goroutine
// writes: direct assignments in a go'd function literal (at any nesting
// depth), plus pointer-parameter/receiver writes of module functions the
// goroutine invokes (via callgraph summaries).
func goroutineWrites(a *modAnalysis, info *types.Info, gs *ast.GoStmt) map[*types.Var]goSideWrite {
	out := make(map[*types.Var]goSideWrite)
	record := func(obj *types.Var, w goSideWrite) {
		if prev, ok := out[obj]; ok {
			w.indexLocal = w.indexLocal && prev.indexLocal
		}
		out[obj] = w
	}

	summaryWrites := func(call *ast.CallExpr, outerOf func(types.Object) bool) {
		fn := resolvedFunc(info, call)
		if fn == nil {
			return
		}
		n := a.graph.NodeOf(fn)
		if n == nil {
			return
		}
		for _, i := range n.Summary.WritesParams {
			if i >= len(call.Args) {
				continue
			}
			if obj := rootVar(info, call.Args[i]); obj != nil && outerOf(obj) {
				record(obj, goSideWrite{pos: call.Pos()})
			}
		}
		if n.Summary.WritesRecv {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := rootVar(info, sel.X); obj != nil && outerOf(obj) {
					record(obj, goSideWrite{pos: call.Pos()})
				}
			}
		}
	}

	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		outerOf := func(obj types.Object) bool {
			return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
		}
		localTo := func(obj types.Object) bool { return !outerOf(obj) }
		markWrite := func(lhs ast.Expr) {
			indexLocal := false
			e := lhs
		peel:
			for {
				switch x := e.(type) {
				case *ast.ParenExpr:
					e = x.X
				case *ast.StarExpr:
					e = x.X
				case *ast.SelectorExpr:
					e = x.X
				case *ast.IndexExpr:
					if indexIsLocal(info, x.Index, localTo) {
						indexLocal = true
					}
					e = x.X
				default:
					break peel
				}
			}
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok || !outerOf(obj) {
				return
			}
			record(obj, goSideWrite{pos: lhs.Pos(), indexLocal: indexLocal})
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					markWrite(lhs)
				}
			case *ast.IncDecStmt:
				markWrite(x.X)
			case *ast.CallExpr:
				summaryWrites(x, outerOf)
			}
			return true
		})
		return out
	}

	// go f(args) / go recv.m(args): every argument and the receiver are in
	// the spawner's frame.
	summaryWrites(gs.Call, func(types.Object) bool { return true })
	return out
}

// goroutineHeldKeys approximates the locks protecting the goroutine-side
// writes: for a go'd literal, the must-held set of the literal's own unit at
// each write (frame-local keys — a captured mutex renders identically in
// both frames); for any spawned call, the type-level closure of the locks it
// may acquire.
func goroutineHeldKeys(a *modAnalysis, pkg *Package, gs *ast.GoStmt, targets map[*types.Var]goSideWrite) map[string]bool {
	keys := make(map[string]bool)
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		var litUnit *lockUnit
		for _, u := range a.units[pkg] {
			if u.lit == lit {
				litUnit = u
				break
			}
		}
		if litUnit != nil {
			flow := a.flowFor(pkg, litUnit)
			for _, w := range targets {
				held := flow.heldAtLocal(w.pos)
				if len(held) == 0 {
					return map[string]bool{} // one unguarded write defeats the exemption
				}
				for k, h := range held {
					keys[k] = true
					if h.TypeKey != "" {
						keys[h.TypeKey] = true
					}
				}
			}
			return keys
		}
	}
	if fn := resolvedFunc(pkg.Info, gs.Call); fn != nil {
		if n := a.graph.NodeOf(fn); n != nil {
			for _, k := range a.graph.AcquiresClosure(n) {
				keys[k] = true
			}
		}
	}
	return keys
}

// outerWrite is one spawner-side write reachable from the go statement.
type outerWrite struct {
	obj        *types.Var
	pos        token.Pos
	indexWrite bool
}

// outerWritesAfterGo walks the CFG forward from the go statement collecting
// writes to the target variables, stopping each path at the first
// synchronization barrier. The go statement's own block is scanned from the
// statement onward; if a loop brings control back to it, it is rescanned in
// full (a write before the go races with the previous iteration's goroutine).
func outerWritesAfterGo(a *modAnalysis, g *cfg.Graph, info *types.Info, gs *ast.GoStmt, targets map[*types.Var]goSideWrite) []outerWrite {
	start := g.BlockOf(gs.Pos())
	if start == nil {
		return nil
	}
	var out []outerWrite
	type writeKey struct {
		obj *types.Var
		pos token.Pos
	}
	seen := make(map[writeKey]bool)

	type ev struct {
		pos     token.Pos
		barrier bool
		write   *outerWrite
	}
	nodeEvents := func(node ast.Node) []ev {
		var evs []ev
		addWrite := func(lhs ast.Expr) {
			indexWrite := false
			e := lhs
		peel:
			for {
				switch x := e.(type) {
				case *ast.ParenExpr:
					e = x.X
				case *ast.StarExpr:
					e = x.X
				case *ast.SelectorExpr:
					e = x.X
				case *ast.IndexExpr:
					indexWrite = true
					e = x.X
				default:
					break peel
				}
			}
			id, ok := e.(*ast.Ident)
			if !ok {
				return
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok {
				return
			}
			if _, tracked := targets[obj]; tracked {
				evs = append(evs, ev{pos: lhs.Pos(), write: &outerWrite{obj: obj, pos: lhs.Pos(), indexWrite: indexWrite}})
			}
		}
		// A RangeStmt head node carries the whole statement; its body has its
		// own blocks. Only the range expression and loop-variable binding
		// execute in the head — a range over a channel is itself a barrier.
		if rs, ok := node.(*ast.RangeStmt); ok {
			if t := info.TypeOf(rs.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					return []ev{{pos: rs.Pos(), barrier: true}}
				}
			}
			if rs.Key != nil {
				addWrite(rs.Key)
			}
			if rs.Value != nil {
				addWrite(rs.Value)
			}
			return evs
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				if x == gs {
					return false // the spawn itself is not on the outer path
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					evs = append(evs, ev{pos: x.Pos(), barrier: true})
				}
			case *ast.SendStmt:
				evs = append(evs, ev{pos: x.Pos(), barrier: true})
			case *ast.SelectStmt:
				evs = append(evs, ev{pos: x.Pos(), barrier: true})
				return false
			case *ast.CallExpr:
				if isWaitCall(info, x) || callMayBlock(a, info, x) {
					evs = append(evs, ev{pos: x.Pos(), barrier: true})
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					addWrite(lhs)
				}
			case *ast.IncDecStmt:
				addWrite(x.X)
			}
			return true
		})
		return evs
	}

	// scanBlock returns false when a barrier stops the path.
	scanBlock := func(b *cfg.Block, from token.Pos) bool {
		for _, node := range b.Nodes {
			if node.End() <= from {
				continue
			}
			evs := nodeEvents(node)
			for i := 1; i < len(evs); i++ { // events come pre-order; order by position
				for j := i; j > 0 && evs[j].pos < evs[j-1].pos; j-- {
					evs[j], evs[j-1] = evs[j-1], evs[j]
				}
			}
			for _, e := range evs {
				if e.pos < from {
					continue
				}
				if e.barrier {
					return false
				}
				key := writeKey{e.write.obj, e.write.pos}
				if !seen[key] {
					seen[key] = true
					out = append(out, *e.write)
				}
			}
		}
		return true
	}

	type qe struct {
		b    *cfg.Block
		from token.Pos
	}
	visitedFull := make(map[*cfg.Block]bool)
	queue := []qe{{b: start, from: gs.Pos()}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.from == token.NoPos {
			if visitedFull[cur.b] {
				continue
			}
			visitedFull[cur.b] = true
		}
		if !scanBlock(cur.b, cur.from) {
			continue
		}
		for _, s := range cur.b.Succs {
			if !visitedFull[s] {
				queue = append(queue, qe{b: s, from: token.NoPos})
			}
		}
	}
	return out
}

// isWaitCall matches sync.WaitGroup.Wait and sync.Cond.Wait.
func isWaitCall(info *types.Info, call *ast.CallExpr) bool {
	fn := resolvedFunc(info, call)
	if fn == nil || fn.Name() != "Wait" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	return true
}

// callMayBlock reports whether a call statically resolves to a module
// function whose synchronous closure contains a blocking operation.
func callMayBlock(a *modAnalysis, info *types.Info, call *ast.CallExpr) bool {
	fn := resolvedFunc(info, call)
	if fn == nil {
		return false
	}
	n := a.graph.NodeOf(fn)
	return n != nil && n.MayBlock
}

// rootVar peels &, *, parens, selectors and indexing off an expression and
// returns the root variable, or nil.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}
