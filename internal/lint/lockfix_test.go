package lint

import (
	"os"
	"path/filepath"
	"testing"
)

const lockFixSrc = `package lockfix

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump(ok bool) {
	b.mu.Lock()
	if !ok {
		return
	}
	b.n++
	b.mu.Unlock()
}

func (b box) read() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}
`

// lockFixGolden is lockFixSrc after wise-lint -fix: the leaked Unlock is
// hoisted to a defer right after the Lock, and the mutex-copying value
// receiver becomes a pointer receiver.
const lockFixGolden = `package lockfix

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !ok {
		return
	}
	b.n++
}

func (b *box) read() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}
`

// TestApplyLockFixesGolden exercises lockdiscipline's two mechanical fixes
// end to end: apply, compare golden, reload, prove idempotency.
func TestApplyLockFixesGolden(t *testing.T) {
	m := repoModule(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "lockfix.go")
	if err := os.WriteFile(path, []byte(lockFixSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{LockDisciplineAnalyzer}
	pkg, err := m.LoadExtraDir(dir, "wise/internal/costmodel/lockfixsample1")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackage(m, pkg, analyzers)
	if len(findings) != 2 {
		t.Fatalf("want 2 findings before fixing, got %v", findings)
	}
	for _, f := range findings {
		if f.Fix == nil {
			t.Fatalf("finding has no fix: %s", f)
		}
	}
	write := func(p string, data []byte) error { return os.WriteFile(p, data, 0o644) }
	results, err := ApplyFixes(m.Fset, findings, write)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Applied == 0 || len(results[0].Skipped) != 0 {
		t.Fatalf("unexpected fix results: %+v", results)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != lockFixGolden {
		t.Fatalf("fixed file mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, lockFixGolden)
	}

	pkg2, err := m.LoadExtraDir(dir, "wise/internal/costmodel/lockfixsample2")
	if err != nil {
		t.Fatal(err)
	}
	again := RunPackage(m, pkg2, analyzers)
	if len(again) != 0 {
		t.Fatalf("fixed file still has findings: %v", again)
	}
	wrote := false
	if _, err := ApplyFixes(m.Fset, again, func(string, []byte) error { wrote = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if wrote {
		t.Fatal("second lock-fix pass wrote a file")
	}
}
