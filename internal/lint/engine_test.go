package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// writeMiniModule lays down a tiny two-package module with one errdrop
// finding (package a) and one malformed //lint:ignore meta finding
// (package b, which imports a) — enough surface to exercise both cache
// tiers, the dependency DAG, and the meta-emitted-exactly-once rule
// without the cost of loading the real tree.
func writeMiniModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module mini\n\ngo 1.22\n",
		"a/a.go": `package a

func fail() error { return nil }

// Drop discards fail's error, which errdrop reports.
func Drop() {
	fail()
}
`,
		"b/b.go": `package b

import "mini/a"

//lint:ignore
func Use() { a.Drop() }
`,
	}
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// appendComment touches a source file without changing its findings.
func appendComment(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString("\n// touched\n"); err != nil {
		t.Fatal(err)
	}
}

// findingsJSON renders findings the way the CLI does, for byte comparison.
func findingsJSON(t *testing.T, fs []Finding) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineMatchesClassicRun is the core equivalence contract: the engine,
// at any job count and with or without a cache, reports byte-for-byte what
// the classic serial Run reports.
func TestEngineMatchesClassicRun(t *testing.T) {
	dir := writeMiniModule(t)
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	classic := findingsJSON(t, Run(mod, All()))
	if !bytes.Contains(classic, []byte("errdrop")) || !bytes.Contains(classic, []byte("malformed")) {
		t.Fatalf("mini module should produce an errdrop and a malformed-ignore finding, got: %s", classic)
	}
	for _, jobs := range []int{1, 8} {
		got, stats, err := RunEngine(All(), EngineOptions{Dir: dir, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if stats.Packages != 2 {
			t.Fatalf("jobs=%d: saw %d packages, want 2", jobs, stats.Packages)
		}
		if gotJSON := findingsJSON(t, got); !bytes.Equal(gotJSON, classic) {
			t.Errorf("jobs=%d: engine diverged from classic run:\nengine:  %s\nclassic: %s", jobs, gotJSON, classic)
		}
	}
}

// TestEngineWarmCacheIdentical checks the cold-vs-warm determinism half of
// the contract: a fully warm run touches no source files and still emits the
// identical report.
func TestEngineWarmCacheIdentical(t *testing.T) {
	dir := writeMiniModule(t)
	cacheDir := t.TempDir()
	opts := EngineOptions{Dir: dir, CacheDir: cacheDir, Jobs: 8}

	cold, coldStats, err := RunEngine(All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CacheHits != 0 || coldStats.CacheMisses != 4 {
		t.Errorf("cold run: hits=%d misses=%d, want 0/4 (2 packages x 2 tiers)", coldStats.CacheHits, coldStats.CacheMisses)
	}
	warm, warmStats, err := RunEngine(All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warmStats.FullyCached {
		t.Error("warm run on an unchanged tree should be fully cached")
	}
	if warmStats.CacheHits != 4 || warmStats.CacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want 4/0", warmStats.CacheHits, warmStats.CacheMisses)
	}
	if !bytes.Equal(findingsJSON(t, cold), findingsJSON(t, warm)) {
		t.Errorf("warm report diverged from cold:\ncold: %s\nwarm: %s", findingsJSON(t, cold), findingsJSON(t, warm))
	}
}

// TestEngineIncrementalInvalidation pins down exactly which tiers re-run
// after an edit: touching a leaf re-runs it and every module-tier entry
// (interprocedural facts flow from callers) but leaves untouched local
// tiers cached; touching a dependency re-runs its whole reverse cone.
func TestEngineIncrementalInvalidation(t *testing.T) {
	dir := writeMiniModule(t)
	cacheDir := t.TempDir()
	opts := EngineOptions{Dir: dir, CacheDir: cacheDir, Jobs: 2}
	base, _, err := RunEngine(All(), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Edit the leaf package b: a's local tier is the only survivor.
	appendComment(t, filepath.Join(dir, "b", "b.go"))
	got, stats, err := RunEngine(All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.CacheMisses != 3 {
		t.Errorf("after editing leaf b: hits=%d misses=%d, want 1/3 (only a's local tier cached)", stats.CacheHits, stats.CacheMisses)
	}
	if !bytes.Equal(findingsJSON(t, base), findingsJSON(t, got)) {
		t.Errorf("findings changed after a comment-only edit:\nbefore: %s\nafter:  %s", findingsJSON(t, base), findingsJSON(t, got))
	}

	// Re-warm, then edit the dependency a: b's import cone contains a, so
	// nothing survives.
	if _, stats, err = RunEngine(All(), opts); err != nil || !stats.FullyCached {
		t.Fatalf("re-warm failed: stats=%+v err=%v", stats, err)
	}
	appendComment(t, filepath.Join(dir, "a", "a.go"))
	_, stats, err = RunEngine(All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 || stats.CacheMisses != 4 {
		t.Errorf("after editing dependency a: hits=%d misses=%d, want 0/4", stats.CacheHits, stats.CacheMisses)
	}
}

// TestEngineBudgetCancelsAndSkipsCache drives the engine with a fake clock
// that blows the budget the moment analysis would start: every miss is
// skipped, the partial (cached-only) report is still returned, and nothing
// partial is ever written to the cache.
func TestEngineBudgetCancelsAndSkipsCache(t *testing.T) {
	dir := writeMiniModule(t)
	cacheDir := t.TempDir()
	base := time.Unix(1_700_000_000, 0)
	var calls atomic.Int64
	clock := func() time.Time {
		// Call 1 computes the deadline, call 2 is the pre-load check; every
		// later call (the per-package and per-analyzer checks) is past it.
		if calls.Add(1) <= 2 {
			return base
		}
		return base.Add(time.Hour)
	}
	got, stats, err := RunEngine(All(), EngineOptions{
		Dir: dir, CacheDir: cacheDir, Jobs: 1, Budget: time.Second, Now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BudgetExceeded {
		t.Error("BudgetExceeded should be set when the clock blows past the deadline")
	}
	if len(got) != 0 {
		t.Errorf("every analysis was cancelled before running, want no findings, got %d", len(got))
	}

	// The blown run must not have cached its skipped (empty) tiers: a fresh
	// run with a sane clock sees a completely cold cache.
	_, stats, err = RunEngine(All(), EngineOptions{Dir: dir, CacheDir: cacheDir, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 {
		t.Errorf("cancelled run leaked %d entries into the cache; partial results must never be stored", stats.CacheHits)
	}
}

// TestEngineBudgetPartialReport warms the cache, invalidates one package,
// and blows the budget immediately: the still-valid cached tier is reported,
// the invalidated ones are skipped — a deterministic partial report.
func TestEngineBudgetPartialReport(t *testing.T) {
	dir := writeMiniModule(t)
	cacheDir := t.TempDir()
	if _, _, err := RunEngine(All(), EngineOptions{Dir: dir, CacheDir: cacheDir, Jobs: 1}); err != nil {
		t.Fatal(err)
	}
	appendComment(t, filepath.Join(dir, "b", "b.go"))

	base := time.Unix(1_700_000_000, 0)
	var calls atomic.Int64
	clock := func() time.Time {
		if calls.Add(1) <= 2 {
			return base
		}
		return base.Add(time.Hour)
	}
	got, stats, err := RunEngine(All(), EngineOptions{
		Dir: dir, CacheDir: cacheDir, Jobs: 1, Budget: time.Second, Now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BudgetExceeded {
		t.Error("BudgetExceeded should be set")
	}
	// a's local tier survived the edit and must appear; b's tiers (and all
	// module tiers) were invalidated and skipped.
	if len(got) != 1 || got[0].Analyzer != "errdrop" {
		t.Errorf("partial report should hold exactly a's cached errdrop finding, got %v", got)
	}
}

// TestEngineWarmSpeedupRealTree is the acceptance benchmark on the real
// module: a fully warm run must be at least 3x faster than the cold run that
// populated the cache, while producing a byte-identical report — at any job
// count, with or without the cache.
func TestEngineWarmSpeedupRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("real-tree engine benchmark skipped in -short")
	}
	cacheDir := t.TempDir()

	serial, _, err := RunEngine(All(), EngineOptions{Dir: ".", Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	serialJSON := findingsJSON(t, serial)

	t0 := time.Now()
	cold, _, err := RunEngine(All(), EngineOptions{Dir: ".", CacheDir: cacheDir, Jobs: 8})
	coldTime := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	t1 := time.Now()
	warm, warmStats, err := RunEngine(All(), EngineOptions{Dir: ".", CacheDir: cacheDir, Jobs: 8})
	warmTime := time.Since(t1)
	if err != nil {
		t.Fatal(err)
	}
	if !warmStats.FullyCached {
		t.Errorf("warm real-tree run should be fully cached: %+v", warmStats)
	}
	coldJSON, warmJSON := findingsJSON(t, cold), findingsJSON(t, warm)
	if !bytes.Equal(serialJSON, coldJSON) {
		t.Error("jobs=8 cold report diverged from the serial no-cache report")
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Error("warm report diverged from cold report")
	}
	ratio := float64(coldTime) / float64(warmTime)
	t.Logf("real tree: cold %v, warm %v — %.1fx speedup (%d packages, %d cached tiers)",
		coldTime.Round(time.Millisecond), warmTime.Round(time.Millisecond), ratio, warmStats.Packages, warmStats.CacheHits)
	if ratio < 3 {
		t.Errorf("warm run only %.1fx faster than cold, want >= 3x (cold %v, warm %v)", ratio, coldTime, warmTime)
	}
}
