package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// FloatEqAnalyzer flags == and != between floating-point operands in
// production code. Exact float equality is almost always a latent bug in a
// pipeline built on estimated cycles and normalized times; comparisons
// belong in epsilon helpers. Functions whose names read as epsilon helpers
// (approx/almost/near/within/eps/tol) are exempt, and deliberate bit-exact
// comparisons carry a //lint:ignore with a rationale.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on float operands outside approved epsilon helpers",
	Run:  runFloatEq,
}

// epsilonHelperRe matches function names that are understood to implement a
// tolerance-based comparison and may therefore compare floats exactly (for
// fast paths, NaN handling, and the tolerance arithmetic itself).
var epsilonHelperRe = regexp.MustCompile(`(?i)(approx|almost|near|within|eps|tol)`)

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && epsilonHelperRe.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, yt := info.Types[be.X], info.Types[be.Y]
				if !isFloat(xt.Type) && !isFloat(yt.Type) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // constant fold, decided at compile time
				}
				pass.Reportf(be.OpPos,
					"float comparison with %s; use an epsilon helper (or //lint:ignore floateq <why bit-exact is intended>)",
					be.Op)
				return true
			})
		}
	}
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
