package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wise/internal/lint/callgraph"
)

// WaitBlockAnalyzer flags blocking operations performed while a mutex is
// held — wg.Wait, bare channel sends/receives, selects without a default,
// ranging over a channel, and calls into module functions whose synchronous
// closure blocks (via the callgraph's MayBlock bit). A goroutine parked on
// one of these keeps the lock held, stalling every other locker; combined
// with a goroutine that needs the same lock to make progress, it deadlocks.
// It also reports WaitGroup.Add performed inside a spawned goroutine through
// a module call — interprocedurally extending goroutinesafety's direct
// check — because an Add racing its Wait makes Wait return early.
var WaitBlockAnalyzer = &Analyzer{
	Name:        "waitblock",
	Category:    "concurrency",
	ModuleFacts: true,
	Doc: "No blocking operation (wg.Wait, channel send/receive, select without " +
		"default, range over a channel, or a call into a module function that may " +
		"block) while holding a lock; no WaitGroup.Add inside the spawned " +
		"goroutine, even through a module call. sync.Cond.Wait is exempt — it " +
		"releases the lock while parked.",
	Run: runWaitBlock,
}

func runWaitBlock(pass *Pass) {
	a := pass.Mod.analysisFor(pass.Pkg)
	for _, u := range a.units[pass.Pkg] {
		checkBlockingWhileHeld(pass, a, u)
		var goStmts []*ast.GoStmt
		walkUnitDirect(u, func(n ast.Node) {
			if gs, ok := n.(*ast.GoStmt); ok {
				goStmts = append(goStmts, gs)
			}
		})
		for _, gs := range goStmts {
			checkInterprocWGAdd(pass, a, gs)
		}
	}
}

// blockingEvent is one potentially-parking operation directly in a unit.
// heldPos is where the lock state is sampled — for a select that is the
// first communication clause (the select keyword itself maps to no CFG
// node), for everything else the operation itself.
type blockingEvent struct {
	pos     token.Pos
	heldPos token.Pos
	desc    string
}

func checkBlockingWhileHeld(pass *Pass, a *modAnalysis, u *lockUnit) {
	info := pass.Pkg.Info
	var events []blockingEvent
	comms := selectCommNodes(u.body())

	ast.Inspect(u.body(), func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if x != u.lit {
				return false // separate unit
			}
		case *ast.GoStmt:
			return false // the spawn does not block the spawner; wg.Add handled separately
		case *ast.DeferStmt:
			return false // runs at return, against the then-current lock state
		case *ast.SelectStmt:
			if !selectHasDefaultClause(x) {
				heldPos := x.Pos()
				for _, clause := range x.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						heldPos = cc.Comm.Pos()
						break
					}
				}
				events = append(events, blockingEvent{x.Pos(), heldPos, "select with no default case"})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !comms[x] {
				events = append(events, blockingEvent{x.Pos(), x.Pos(), "channel receive"})
			}
		case *ast.SendStmt:
			if !comms[x] {
				events = append(events, blockingEvent{x.Pos(), x.Pos(), "channel send"})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					events = append(events, blockingEvent{x.Pos(), x.Pos(), "range over a channel"})
				}
			}
		case *ast.CallExpr:
			if desc, ok := blockingCallDesc(a, info, x); ok {
				events = append(events, blockingEvent{x.Pos(), x.Pos(), desc})
			}
		}
		return true
	})

	for _, e := range events {
		held := a.heldAt(pass.Pkg, u, e.heldPos)
		if len(held) == 0 {
			continue
		}
		pass.Reportf(e.pos,
			"%s while holding %s; a parked goroutine keeps the lock held and can deadlock everything contending for it",
			e.desc, strings.Join(sortedHeldKeys(held), ", "))
	}
}

// blockingCallDesc classifies a call as blocking: WaitGroup.Wait directly, or
// a static call to a module function whose synchronous closure blocks.
// sync.Cond.Wait is exempt (it releases the lock while parked).
func blockingCallDesc(a *modAnalysis, info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := resolvedFunc(info, call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
		if receiverNamed(fn) == "WaitGroup" {
			name := "WaitGroup.Wait"
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if p := callgraph.RenderPath(sel.X); p != "" {
					name = p + ".Wait()"
				}
			}
			return name, true
		}
		return "", false // Cond.Wait releases the lock
	}
	n := a.graph.NodeOf(fn)
	if n != nil && n.MayBlock {
		return "call to " + fn.Name() + ", which may block", true
	}
	return "", false
}

// checkInterprocWGAdd reports WaitGroup.Add calls that execute inside the
// spawned goroutine through a module function: `go addAndWork(&wg)` or a go'd
// literal calling such a function. The direct in-literal wg.Add case is
// goroutinesafety's.
func checkInterprocWGAdd(pass *Pass, a *modAnalysis, gs *ast.GoStmt) {
	info := pass.Pkg.Info
	reportAddVia := func(pos token.Pos, call *ast.CallExpr, fn *types.Func, argIdx int) {
		arg := "the WaitGroup"
		if argIdx < len(call.Args) {
			if p := callgraph.RenderPath(ast.Unparen(peelAddr(call.Args[argIdx]))); p != "" {
				arg = p
			}
		}
		pass.Reportf(pos,
			"%s.Add runs inside the spawned goroutine (via %s) and can execute after Wait returns; call Add before the go statement",
			arg, fn.Name())
	}

	checkCall := func(call *ast.CallExpr, outerOf func(types.Object) bool) {
		fn := resolvedFunc(info, call)
		if fn == nil {
			return
		}
		n := a.graph.NodeOf(fn)
		if n == nil {
			return
		}
		for _, i := range n.Summary.WGAddParams {
			if i >= len(call.Args) {
				continue
			}
			if obj := rootVar(info, call.Args[i]); obj != nil && outerOf(obj) {
				reportAddVia(call.Pos(), call, fn, i)
			}
		}
	}

	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		outerOf := func(obj types.Object) bool {
			return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(call, outerOf)
			}
			return true
		})
		return
	}
	checkCall(gs.Call, func(types.Object) bool { return true })
}

// peelAddr strips a leading & so RenderPath sees the operand.
func peelAddr(e ast.Expr) ast.Expr {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

// selectCommNodes marks the communication operations that belong to a select
// clause: they do not block on their own — the select as a whole does.
func selectCommNodes(body *ast.BlockStmt) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch c := cc.Comm.(type) {
			case *ast.SendStmt:
				out[c] = true
			case *ast.ExprStmt:
				out[ast.Unparen(c.X)] = true
			case *ast.AssignStmt:
				for _, rhs := range c.Rhs {
					out[ast.Unparen(rhs)] = true
				}
			}
		}
		return true
	})
	return out
}

// selectHasDefaultClause reports whether a select has a default case.
func selectHasDefaultClause(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
