package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteSARIF round-trips the log through encoding/json and checks the
// invariants the uploader depends on: schema/version, one run, every
// analyzer present as a rule, every result's ruleIndex resolving to its
// ruleId, %SRCROOT%-anchored slash paths, and startLine >= 1.
func TestWriteSARIF(t *testing.T) {
	findings := []Finding{
		{Analyzer: "hotalloc", File: "internal/kernels/x.go", Line: 12, Col: 3, Message: "boom"},
		{Analyzer: "unusedignore", File: "internal/ml/y.go", Line: 0, Col: 0, Message: "stale"},
	}
	var b strings.Builder
	if err := WriteSARIF(&b, All(), findings, map[string]any{"wallClockSeconds": 1.5, "budgetSeconds": 90.0}); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						Properties struct {
							Category string `json:"category"`
						} `json:"properties"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Properties map[string]any `json:"properties"`
			Results    []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(b.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Fatalf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "wise-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if run.Properties["wallClockSeconds"] != 1.5 || run.Properties["budgetSeconds"] != 90.0 {
		t.Errorf("run properties = %v, want wallClockSeconds/budgetSeconds", run.Properties)
	}
	ruleIDs := make(map[string]int)
	categories := make(map[string]string)
	for i, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = i
		categories[r.ID] = r.Properties.Category
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
	}
	for _, a := range All() {
		if _, ok := ruleIDs[a.Name]; !ok {
			t.Errorf("analyzer %s missing from rules", a.Name)
		}
		if categories[a.Name] != a.Category {
			t.Errorf("rule %s category = %q, want %q", a.Name, categories[a.Name], a.Category)
		}
	}
	for _, name := range []string{"lockdiscipline", "guardedby", "goroutineescape", "waitblock"} {
		if categories[name] != "concurrency" {
			t.Errorf("rule %s category = %q, want concurrency", name, categories[name])
		}
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("want %d results, got %d", len(findings), len(run.Results))
	}
	for _, r := range run.Results {
		idx, ok := ruleIDs[r.RuleID]
		if !ok {
			t.Errorf("result ruleId %s not in rules", r.RuleID)
		} else if idx != r.RuleIndex {
			t.Errorf("result %s ruleIndex = %d, want %d", r.RuleID, r.RuleIndex, idx)
		}
		if r.Level != "warning" || r.Message.Text == "" {
			t.Errorf("result %s level/message = %q/%q", r.RuleID, r.Level, r.Message.Text)
		}
		for _, loc := range r.Locations {
			pl := loc.PhysicalLocation
			if pl.ArtifactLocation.URIBaseID != "%SRCROOT%" {
				t.Errorf("uriBaseId = %q", pl.ArtifactLocation.URIBaseID)
			}
			if strings.Contains(pl.ArtifactLocation.URI, "\\") {
				t.Errorf("uri %q not slash-separated", pl.ArtifactLocation.URI)
			}
			if pl.Region.StartLine < 1 {
				t.Errorf("startLine %d < 1", pl.Region.StartLine)
			}
		}
	}
}

// TestWriteSARIFEmpty checks the zero-finding log still carries the rule
// catalogue and an empty (not null) results array.
func TestWriteSARIFEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteSARIF(&b, All(), nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `"results": null`) {
		t.Fatal("results must encode as [], not null")
	}
	var raw map[string]any
	if err := json.Unmarshal([]byte(b.String()), &raw); err != nil {
		t.Fatal(err)
	}
}
