package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the wise-lint v4 incremental analysis engine (LINTING.md).
// It splits the analyzer suite into two cacheable tiers per package — the
// package-scoped tier and the ModuleFacts tier — keys each tier's findings
// by content hashes (cache.go), and schedules package analysis across a
// worker pool. The shape is the paper's own inspector-executor lesson
// applied to the linter: pay the expensive inspection once, persist the
// facts, and reuse them until the inputs change.
//
// The engine's contract, regression-tested in engine_test.go:
//
//   - determinism: serial, -jobs N, cold-cache, and warm-cache runs produce
//     byte-identical reports (findings are merged in topological package
//     order and fully sorted, so scheduling can never leak into output);
//   - soundness: a package re-runs whenever its own sources, anything in its
//     import cone, or (for module-tier analyzers) anything in the module
//     changes; corrupt or truncated cache entries silently re-analyze;
//   - speed: a fully-warm run never parses or type-checks at all.

// EngineOptions configures one engine run.
type EngineOptions struct {
	Dir      string // start directory for module discovery ("" = ".")
	CacheDir string // on-disk fact cache root ("" = no cache)
	Jobs     int    // analysis/type-check parallelism (<= 0 = GOMAXPROCS)

	// Budget, when positive, bounds the run's wall clock: once blown,
	// in-flight package analyses finish their current analyzer and every
	// remaining one is skipped. The partial findings are still returned
	// (and reported), Stats.BudgetExceeded is set, and nothing partial is
	// written to the cache.
	Budget time.Duration
	Now    func() time.Time // injectable clock for budget tests (nil = time.Now)
}

// EngineStats describes what one engine run did.
type EngineStats struct {
	Root           string // module root
	Packages       int    // module packages considered
	CacheHits      int    // tier entries served from the cache
	CacheMisses    int    // tier entries analyzed (or skipped by budget)
	FullyCached    bool   // every tier of every package hit: nothing was parsed
	BudgetExceeded bool   // the wall-clock budget blew mid-run
}

// RunEngine analyzes the module containing opts.Dir with the given analyzers
// through the incremental engine. The returned findings are identical to
// lint.Run over a classic LoadModule — that equivalence, across every
// jobs/cache combination, is the engine's core regression test.
func RunEngine(analyzers []*Analyzer, opts EngineOptions) ([]Finding, EngineStats, error) {
	var stats EngineStats
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	var deadline time.Time
	var blown atomic.Bool
	if opts.Budget > 0 {
		deadline = now().Add(opts.Budget)
	}
	cancelled := func() bool {
		if opts.Budget <= 0 {
			return false
		}
		if blown.Load() {
			return true
		}
		if now().After(deadline) {
			blown.Store(true)
			return true
		}
		return false
	}

	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, stats, err
	}
	stats.Root = root
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, stats, err
	}
	cache, err := openFactCache(opts.CacheDir)
	if err != nil {
		return nil, stats, err
	}

	metas, order, err := scanModule(root, modPath)
	if err != nil {
		return nil, stats, err
	}
	stats.Packages = len(order)
	computeDepKeys(metas, order)
	gomodHash, err := hashFiles(root, []string{"go.mod"})
	if err != nil {
		return nil, stats, err
	}
	modState := moduleStateHash(metas, gomodHash)

	// Tier split. The malformed-//lint:ignore meta findings are emitted by
	// exactly one tier — the first non-empty one — and that choice is part
	// of the cache key (metaTag) so entries written under one analyzer
	// subset can never double- or zero-emit meta findings under another.
	var localTier, moduleTier []*Analyzer
	for _, a := range analyzers {
		if a.ModuleFacts {
			moduleTier = append(moduleTier, a)
		} else {
			localTier = append(localTier, a)
		}
	}
	localMeta := len(localTier) > 0
	localNames := tierNames(localTier) + metaTag(localMeta)
	moduleNames := tierNames(moduleTier) + metaTag(!localMeta)

	type pkgKeys struct{ local, module string }
	keys := make(map[string]pkgKeys, len(order))
	for _, path := range order {
		m := metas[path]
		keys[path] = pkgKeys{
			local:  localKey(m, localNames),
			module: moduleKey(m, moduleNames, modState),
		}
	}

	// Warm probe: if every needed tier of every package hits, the run is
	// pure cache rehydration — no parsing, no type-checking. This is where
	// the >=3x warm speedup comes from.
	type tierResult struct {
		local, module         []Finding
		localHit, moduleHit   bool
		localSkip, moduleSkip bool // budget-skipped: do not cache, findings partial
	}
	results := make(map[string]*tierResult, len(order))
	allHit := true
	for _, path := range order {
		r := &tierResult{}
		if len(localTier) > 0 {
			r.local, r.localHit = cache.load(root, keys[path].local)
		} else {
			r.localHit = true
		}
		if len(moduleTier) > 0 {
			r.module, r.moduleHit = cache.load(root, keys[path].module)
		} else {
			r.moduleHit = true
		}
		if !r.localHit || !r.moduleHit {
			allHit = false
		}
		results[path] = r
	}
	countTier := func(hit bool) {
		if hit {
			stats.CacheHits++
		} else {
			stats.CacheMisses++
		}
	}
	for _, path := range order {
		r := results[path]
		if len(localTier) > 0 {
			countTier(r.localHit)
		}
		if len(moduleTier) > 0 {
			countTier(r.moduleHit)
		}
	}
	merge := func() []Finding {
		var out []Finding
		for _, path := range order {
			out = append(out, results[path].local...)
			out = append(out, results[path].module...)
		}
		sortFindings(out)
		return out
	}
	if allHit {
		stats.FullyCached = true
		stats.BudgetExceeded = cancelled()
		return merge(), stats, nil
	}
	if cancelled() {
		// Budget blown before analysis even started: report what the cache
		// already holds, nothing more.
		stats.BudgetExceeded = true
		for _, r := range results {
			if !r.localHit {
				r.local = nil
			}
			if !r.moduleHit {
				r.module = nil
			}
		}
		return merge(), stats, nil
	}

	mod, err := LoadModuleJobs(root, jobs)
	if err != nil {
		return nil, stats, err
	}

	// Analyze misses with a worker pool. Packages are independent once the
	// module is fully type-checked (the shared interprocedural analysis is
	// built once under analysisOnce; per-unit dataflow is mutex-cached), so
	// scheduling order is irrelevant — merge() re-imposes the deterministic
	// order afterwards.
	var wg sync.WaitGroup
	sem := make(chan struct{}, jobs)
	for _, pkg := range mod.Packages {
		r := results[pkg.Path]
		if r == nil || (r.localHit && r.moduleHit) {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(pkg *Package, r *tierResult) {
			defer wg.Done()
			defer func() { <-sem }()
			k := keys[pkg.Path]
			if !r.localHit {
				if cancelled() {
					r.localSkip = true
				} else {
					r.local = runPackageTier(mod, pkg, localTier, localMeta, cancelled)
					if cancelled() {
						r.localSkip = true // partial: keep findings, skip store
					} else {
						cache.store(root, k.local, r.local)
					}
				}
			}
			if !r.moduleHit {
				if cancelled() {
					r.moduleSkip = true
				} else {
					r.module = runPackageTier(mod, pkg, moduleTier, !localMeta, cancelled)
					if cancelled() {
						r.moduleSkip = true
					} else {
						cache.store(root, k.module, r.module)
					}
				}
			}
		}(pkg, r)
	}
	wg.Wait()
	stats.BudgetExceeded = cancelled()
	return merge(), stats, nil
}

func metaTag(includeMeta bool) string {
	if includeMeta {
		return "+meta"
	}
	return "-meta"
}

// scanModule is the engine's no-parse package discovery: it walks the module
// exactly like the loader (same skip rules), reads every Go file once to
// hash it, and extracts imports with an ImportsOnly parse — enough to build
// the dependency DAG and all cache keys without type-checking anything.
func scanModule(root, modPath string) (map[string]*pkgMeta, []string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(dirs)

	metas := make(map[string]*pkgMeta)
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		importPath := modPath
		if rel, err := filepath.Rel(root, dir); err == nil && rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		m := &pkgMeta{Path: importPath, Dir: dir}
		imports := make(map[string]bool)
		srcHash := []string{"src"}
		testHash := []string{"test"}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, nil, err
			}
			if strings.HasSuffix(name, "_test.go") {
				m.TestFiles = append(m.TestFiles, name)
				testHash = append(testHash, name, hashStrings(string(data)))
				continue
			}
			m.SrcFiles = append(m.SrcFiles, name)
			srcHash = append(srcHash, name, hashStrings(string(data)))
			f, err := parser.ParseFile(fset, name, data, parser.ImportsOnly)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: scanning %s: %w", filepath.Join(dir, name), err)
			}
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					imports[ip] = true
				}
			}
		}
		if len(m.SrcFiles) == 0 {
			continue
		}
		m.srcHash = hashStrings(srcHash...)
		m.testHash = hashStrings(testHash...)
		for ip := range imports {
			m.Imports = append(m.Imports, ip)
		}
		sort.Strings(m.Imports)
		m.deps = m.Imports
		metas[m.Path] = m
	}

	order, err := metaTopoOrder(metas)
	if err != nil {
		return nil, nil, err
	}
	return metas, order, nil
}

// metaTopoOrder sorts scanned packages so every package follows its
// module-internal imports — the same deterministic order the loader uses,
// so merged findings match the classic path byte for byte.
func metaTopoOrder(metas map[string]*pkgMeta) ([]string, error) {
	const (
		white = iota
		gray
		black
	)
	state := make(map[string]int, len(metas))
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = gray
		for _, d := range metas[path].deps {
			if metas[d] == nil {
				continue // import of a module path with no non-test files: loader errors, scan tolerates
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(metas))
	for p := range metas {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
