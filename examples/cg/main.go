// Conjugate-gradient solve with a WISE-selected SpMV format: the scientific
// counterpart to the pagerank example. A 2D Poisson system (5-point stencil)
// is solved with CG, where every iteration is one SpMV on the same matrix —
// exactly the amortization scenario WISE targets.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"wise"
	"wise/internal/gen"
	"wise/internal/solvers"
)

func main() {
	// Build the system: -Laplace(u) = f on a 96x96 grid, shifted to be
	// strictly positive definite.
	g := 96
	m := gen.Stencil2D(g, g, false).AddToDiagonal(0.5)
	n := m.Rows
	fmt.Printf("system: %d unknowns, %d nonzeros (5-point stencil)\n", n, m.NNZ())

	// Manufactured solution u*(x,y) = sin(pi x) sin(pi y); b = A u*.
	uStar := make([]float64, n)
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			uStar[y*g+x] = math.Sin(math.Pi*float64(x)/float64(g-1)) *
				math.Sin(math.Pi*float64(y)/float64(g-1))
		}
	}
	b := make([]float64, n)
	m.SpMV(b, uStar)

	// Train WISE and let it choose the SpMV method for this matrix.
	fw, err := wise.Train(wise.GenerateCorpus(wise.CorpusConfig{
		Seed:      1,
		RowScales: []float64{10, 11, 12, 13},
		Degrees:   []float64{4, 8, 16},
		MaxNNZ:    1 << 21,
		SciCount:  16,
	}), wise.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sel, format := fw.Prepare(m)
	fmt.Printf("WISE selected: %s\n", sel.Method)

	// Solve with the chosen format.
	x := make([]float64, n)
	t0 := time.Now()
	res, err := solvers.CG(solvers.FromFormat(format, 0), b, x, 1e-10, 10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG: %d iterations, residual %.2e, %v (converged=%v)\n",
		res.Iterations, res.Residual, time.Since(t0).Round(time.Microsecond), res.Converged)

	// Error against the manufactured solution.
	var maxErr float64
	for i := range x {
		if d := math.Abs(x[i] - uStar[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max |u - u*| = %.2e\n", maxErr)

	// Cross-check: same solve via the reference CSR kernel.
	x2 := make([]float64, n)
	res2, err := solvers.CG(solvers.FromCSR(m), b, x2, 1e-10, 10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference CSR CG: %d iterations (identical arithmetic path: %v)\n",
		res2.Iterations, res.Iterations == res2.Iterations)
}
