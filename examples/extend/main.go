// Extend demonstrates the paper's Section 7 extensibility claim: "The
// result is an extendable framework where we can add new methods without
// changing already existing models." A trained 29-model framework is
// extended with a 30th method — a Cagra-style cache-blocked CSR (SegCSR) —
// and the example verifies that (a) the original models' predictions are
// bit-identical before and after, and (b) the selector now consults the new
// model too.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wise"
	"wise/internal/gen"
)

func main() {
	corpus := wise.GenerateCorpus(wise.CorpusConfig{
		Seed:      1,
		RowScales: []float64{10, 11, 12, 13},
		Degrees:   []float64{4, 16, 64},
		MaxNNZ:    1 << 21,
		SciCount:  16,
	})
	fw, err := wise.Train(corpus, wise.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Probe matrices of different characters.
	rng := rand.New(rand.NewSource(5))
	probes := map[string]*wise.Matrix{
		"banded-science": gen.Banded(rng, 6000, []int{-2, -1, 0, 1, 2}),
		"power-law-web":  gen.RMATRows(rng, 12000, 24, gen.HighSkew),
		"uniform-large":  gen.Uniform(rng, 16000, 16),
	}

	before := map[string]wise.Selection{}
	for name, m := range probes {
		before[name] = fw.Select(m)
	}

	// Extend with the SegCSR cache-blocked method sized for the machine LLC.
	ext := wise.ExtensionMethods(wise.ScaledMachine())
	fmt.Printf("extension methods available: %v\n", ext)
	if err := fw.Extend(ext[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extended framework: now %d models (was 29)\n\n", len(before[fnFirst(before)].Classes)+1)

	unchanged := true
	for name, m := range probes {
		after := fw.Select(m)
		for i, c := range before[name].Classes {
			if after.Classes[i] != c {
				unchanged = false
			}
		}
		fmt.Printf("%-15s before: %-28s after: %-28s (new model predicted C%d)\n",
			name, before[name].Method, after.Method, after.Classes[len(after.Classes)-1])
	}
	fmt.Printf("\nexisting 29 models unchanged by the extension: %v\n", unchanged)
}

func fnFirst(m map[string]wise.Selection) string {
	for k := range m {
		return k
	}
	return ""
}
