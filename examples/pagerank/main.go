// PageRank and HITS with WISE: the paper's motivating workload class —
// iterative graph algorithms that execute SpMV many times with the same
// matrix, so a one-time format selection amortizes across all iterations.
//
// The example builds a power-law web-like graph, lets WISE pick the SpMV
// method for the PageRank transition operator, runs PageRank and HITS to
// convergence with the chosen formats, and cross-checks against plain CSR.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"wise"
	"wise/internal/gen"
	"wise/internal/graph"
	"wise/internal/solvers"
)

func main() {
	// A directed power-law graph (Graph500-style RMAT).
	rng := rand.New(rand.NewSource(7))
	g, err := graph.New(gen.RMATRows(rng, 8192, 16, gen.HighSkew))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.Adj.NNZ())

	// Train WISE and let it pick the method for the transition operator.
	corpus := wise.GenerateCorpus(wise.CorpusConfig{
		Seed:      1,
		RowScales: []float64{10, 11, 12, 13},
		Degrees:   []float64{4, 16, 64},
		MaxNNZ:    1 << 21,
		SciCount:  16,
	})
	fw, err := wise.Train(corpus, wise.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	mt := g.TransitionOperator()
	sel, format := fw.Prepare(mt)
	fmt.Printf("WISE selected for PageRank operator: %s\n", sel.Method)

	res := graph.PageRank(solvers.FromFormat(format, 0), g.OutDeg, 0.85, 1e-9, 200)
	fmt.Printf("PageRank converged after %d iterations (delta %.2e)\n", res.Iterations, res.Delta)

	// Cross-check against the reference CSR kernel.
	ref := graph.PageRank(solvers.FromCSR(mt), g.OutDeg, 0.85, 1e-9, 200)
	var maxDiff float64
	for i := range res.Ranks {
		if d := math.Abs(res.Ranks[i] - ref.Ranks[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |rank - reference| = %.2e\n", maxDiff)

	top := topK(res.Ranks, 5)
	fmt.Println("top 5 vertices by PageRank:")
	for _, v := range top {
		fmt.Printf("  vertex %6d  rank %.6f  (in-degree %d)\n", v, res.Ranks[v], mt.RowNNZ(v))
	}

	// HITS on the same graph: hubs point at good authorities. WISE can
	// select a format for each direction (A and A^T).
	_, fwd := fw.Prepare(g.Adj)
	_, bwd := fw.Prepare(g.Transpose())
	hits := graph.HITS(
		solvers.FromFormat(fwd, 0),
		solvers.FromFormat(bwd, 0),
		g.N(), 1e-10, 200,
	)
	fmt.Printf("HITS converged after %d iterations\n", hits.Iterations)
	fmt.Println("top 3 authorities:")
	for _, v := range topK(hits.Authorities, 3) {
		fmt.Printf("  vertex %6d  authority %.5f\n", v, hits.Authorities[v])
	}
}

func topK(values []float64, k int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	return idx[:k]
}
