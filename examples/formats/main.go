// Formats renders the worked example of the paper's Figure 1: the 8x8
// matrix in its initial CSR form and in every vectorized layout (SELLPACK,
// Sell-c-sigma, Sell-c-R, LAV-1Seg, LAV), showing row orders, chunk
// boundaries, padding, and — for the CFS methods — the column permutation
// and the LAV dense/sparse segment split.
package main

import (
	"fmt"
	"strings"

	"wise/internal/kernels"
	"wise/internal/matrix"
)

func main() {
	m := matrix.Fig1Example()
	fmt.Println("initial matrix (values 1..17, '.' = zero):")
	printDense(m)

	methods := []kernels.Method{
		{Kind: kernels.SELLPACK, C: 2, Sched: kernels.Dyn},
		{Kind: kernels.SellCSigma, C: 2, Sigma: 4, Sched: kernels.Dyn},
		{Kind: kernels.SellCR, C: 2, Sched: kernels.Dyn},
		{Kind: kernels.LAV1Seg, C: 2, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 2, T: 0.7, Sched: kernels.Dyn},
	}
	for _, method := range methods {
		p := kernels.BuildSRVPack(m, method)
		st := p.Stats()
		fmt.Printf("\n=== %s ===\n", method)
		fmt.Printf("segments %d, chunks %d, stored slots %d, padding %d\n",
			st.Segments, st.Chunks, st.StoredSlots, st.Padding)
		if p.ColPerm != nil {
			fmt.Printf("CFS column order (rank -> original column): %v\n", p.ColPerm)
		}
		for si := range p.Segments {
			seg := &p.Segments[si]
			name := "segment"
			if len(p.Segments) == 2 {
				if si == 0 {
					name = "dense segment"
				} else {
					name = "sparse segment"
				}
			}
			fmt.Printf("%s (column ranks [%d, %d)):\n", name, seg.ColLo, seg.ColHi)
			fmt.Printf("  row_order: %v\n", seg.RowOrder)
			printSegment(seg, p.C)
		}
		verify(m, p)
	}
}

// printDense renders the matrix with single-character cells.
func printDense(m *matrix.CSR) {
	d := m.ToDense()
	var b strings.Builder
	b.WriteString("      ")
	for j := 0; j < m.Cols; j++ {
		fmt.Fprintf(&b, "c%-3d", j)
	}
	b.WriteByte('\n')
	for i := 0; i < m.Rows; i++ {
		fmt.Fprintf(&b, "  r%-2d ", i)
		for j := 0; j < m.Cols; j++ {
			v := d[i*m.Cols+j]
			if v == 0 { //lint:ignore floateq structural zeros in dense storage are exactly 0.0
				b.WriteString(".   ")
			} else {
				fmt.Fprintf(&b, "%-4.0f", v)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
}

// printSegment shows each chunk's packed lanes; '*' marks padding slots.
func printSegment(seg *kernels.Segment, c int) {
	for k := 0; k < seg.Chunks(); k++ {
		lo, hi := seg.ChunkOff[k], seg.ChunkOff[k+1]
		if lo == hi {
			continue
		}
		fmt.Printf("  chunk %d (width %d):\n", k, hi-lo)
		base := k * c
		lanes := len(seg.RowOrder) - base
		if lanes > c {
			lanes = c
		}
		for l := 0; l < lanes; l++ {
			fmt.Printf("    lane %d (row %d): ", l, seg.RowOrder[base+l])
			for pos := lo; pos < hi; pos++ {
				idx := pos*int64(c) + int64(l)
				v := seg.Vals[idx]
				if v == 0 { //lint:ignore floateq sell-pack padding slots are exactly 0.0
					fmt.Print("*    ")
				} else {
					fmt.Printf("%-2.0f@c%-2d", v, seg.ColIdx[idx])
				}
			}
			fmt.Println()
		}
	}
}

// verify checks the pack against the reference kernel.
func verify(m *matrix.CSR, p *kernels.SRVPack) {
	x := matrix.Iota(m.Cols)
	want := make([]float64, m.Rows)
	m.SpMV(want, x)
	got := make([]float64, m.Rows)
	p.SpMV(got, x)
	fmt.Printf("SpMV check vs reference: max abs diff = %g\n", matrix.MaxAbsDiff(want, got))
}
