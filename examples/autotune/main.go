// Autotune comparison: WISE vs the oracle, the MKL-like baseline, and the
// inspector-executor auto-tuner on a held-out evaluation — the experiment
// behind the paper's headline numbers (2.4x WISE, 2.5x oracle, 2.11x IE).
package main

import (
	"fmt"
	"log"

	"wise"
)

func main() {
	// A moderate corpus: large enough for the trees to learn the method
	// crossovers, small enough to run in well under a minute.
	corpus := wise.GenerateCorpus(wise.CorpusConfig{
		Seed:      1,
		RowScales: []float64{9, 10, 11, 12, 13},
		Degrees:   []float64{4, 8, 16, 32},
		MaxNNZ:    1 << 21,
		SciCount:  24,
	})
	fmt.Printf("corpus: %d matrices; labeling with the cost model...\n", len(corpus))

	fw, err := wise.Train(corpus, wise.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Out-of-fold evaluation: every matrix is selected by models that never
	// saw it during training.
	res, err := fw.Evaluate(10, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmean speedup over the MKL-like baseline (paper values in parens):")
	fmt.Printf("  WISE    %.2fx  (2.4x)\n", res.MeanWISESpeedup)
	fmt.Printf("  oracle  %.2fx  (2.5x)\n", res.MeanOracleSpeedup)
	fmt.Printf("  MKL IE  %.2fx  (2.11x)\n", res.MeanIESpeedup)
	fmt.Printf("  WISE/IE %.2fx  (1.14x)\n", res.MeanWISESpeedup/res.MeanIESpeedup)
	fmt.Println("\nmean preprocessing cost in baseline SpMV iterations:")
	fmt.Printf("  WISE    %.2f  (8.33)\n", res.MeanWISEPrepIters)
	fmt.Printf("  MKL IE  %.2f  (17.43)\n", res.MeanIEPrepIters)
	fmt.Printf("  ratio   %.0f%%  (<50%%)\n", 100*res.MeanWISEPrepIters/res.MeanIEPrepIters)

	// Where did WISE leave speedup on the table? Show the worst regressions
	// versus the oracle.
	fmt.Println("\nlargest WISE-vs-oracle gaps:")
	type gap struct {
		name string
		w, o float64
	}
	var gaps []gap
	for _, pm := range res.PerMatrix {
		gaps = append(gaps, gap{pm.Name, pm.WISESpeedup, pm.OracleSpeedup})
	}
	for i := 0; i < 5 && i < len(gaps); i++ {
		worst := i
		for j := i; j < len(gaps); j++ {
			if gaps[j].o-gaps[j].w > gaps[worst].o-gaps[worst].w {
				worst = j
			}
		}
		gaps[i], gaps[worst] = gaps[worst], gaps[i]
		fmt.Printf("  %-24s WISE %.2fx vs oracle %.2fx\n", gaps[i].name, gaps[i].w, gaps[i].o)
	}
}
