// Quickstart: train WISE on a small generated corpus, then let it pick and
// run the best SpMV method for a matrix it has never seen.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wise"
	"wise/internal/gen"
)

func main() {
	// 1. Generate a training corpus (science-like + RMAT/RGG matrices, as in
	// the paper's Section 4.5). A small configuration keeps this example
	// fast; see wise.DefaultCorpusConfig for the real one.
	corpusCfg := wise.CorpusConfig{
		Seed:      1,
		RowScales: []float64{9, 10, 11, 12},
		Degrees:   []float64{4, 16, 64},
		MaxNNZ:    1 << 21,
		SciCount:  16,
	}
	corpus := wise.GenerateCorpus(corpusCfg)
	fmt.Printf("training corpus: %d matrices\n", len(corpus))

	// 2. Train: the cost model labels every {method, parameter} pair on
	// every matrix with a speedup class, and one decision tree per pair
	// learns to predict that class from the matrix features.
	fw, err := wise.Train(corpus, wise.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 3. A new matrix WISE has never seen: a power-law web-graph-like one.
	rng := rand.New(rand.NewSource(99))
	m := gen.RMATRows(rng, 6000, 24, gen.HighSkew)
	fmt.Printf("input matrix: %d x %d, %d nonzeros\n", m.Rows, m.Cols, m.NNZ())

	// 4. Select and run. Prepare returns the chosen method and its built
	// format; the format can be reused across iterations.
	sel, format := fw.Prepare(m)
	fmt.Printf("WISE selected: %s (predicted class C%d)\n", sel.Method, sel.PredictedClass)

	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1 / float64(m.Cols)
	}
	y := make([]float64, m.Rows)
	format.SpMVParallel(y, x, 0)

	// 5. Verify against the reference CSR kernel.
	want := make([]float64, m.Rows)
	m.SpMV(want, x)
	var maxDiff float64
	for i := range y {
		d := y[i] - want[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("verified against reference CSR: max abs diff = %g\n", maxDiff)
}
