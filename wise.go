// Package wise is the public API of the WISE reproduction — an ML framework
// that predicts the speedup of SpMV methods over a baseline for a given
// sparse matrix and selects the best method (Yesil et al., "WISE: Predicting
// the Performance of Sparse Matrix Vector Multiplication with Machine
// Learning", PPoPP 2023).
//
// Typical use:
//
//	corpus := wise.GenerateCorpus(wise.DefaultCorpusConfig())
//	fw, _ := wise.Train(corpus, wise.DefaultConfig())
//	sel, format := fw.Prepare(myMatrix)   // pick method + build its layout
//	format.SpMVParallel(y, x, 0)          // run SpMV with the chosen method
//
// The heavy lifting lives in internal packages; this package re-exports the
// stable surface: sparse matrices (CSR/COO, MatrixMarket I/O), the SpMV
// method space, corpus generators, the machine/cost models, and the trained
// framework.
package wise

import (
	"fmt"

	"wise/internal/core"
	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/ml"
	"wise/internal/perf"
)

// Re-exported core types. Aliases keep the internal packages as the single
// source of truth while giving users stable public names.
type (
	// Matrix is a CSR sparse matrix.
	Matrix = matrix.CSR
	// COO is a coordinate-format builder for Matrix.
	COO = matrix.COO
	// Method is one {SpMV method, parameter} combination.
	Method = kernels.Method
	// Format is a built, executable SpMV representation.
	Format = kernels.Format
	// Machine is the machine model used for method parameters and the
	// execution-time estimator.
	Machine = machine.Machine
	// Features is a named matrix feature vector (paper Table 2).
	Features = features.Features
	// Selection is WISE's method choice for one matrix.
	Selection = core.Selection
	// CorpusConfig controls training-corpus generation (paper Section 4.5).
	CorpusConfig = gen.CorpusConfig
	// LabeledMatrix is a corpus matrix with provenance.
	LabeledMatrix = gen.Labeled
	// Estimator is the deterministic cost model standing in for wall-clock
	// measurement on the paper's 24-core AVX-512 server.
	Estimator = costmodel.Estimator
	// EvalResult aggregates an end-to-end evaluation (paper Sections 6.3-6.4).
	EvalResult = core.EvalResult
)

// Method families and scheduling policies.
const (
	CSR        = kernels.CSR
	SELLPACK   = kernels.SELLPACK
	SellCSigma = kernels.SellCSigma
	SellCR     = kernels.SellCR
	LAV1Seg    = kernels.LAV1Seg
	LAV        = kernels.LAV

	Dyn    = kernels.Dyn
	St     = kernels.St
	StCont = kernels.StCont
)

// NewCOO returns an empty coordinate-format matrix builder.
func NewCOO(rows, cols int) *COO { return matrix.NewCOO(rows, cols) }

// ReadMatrixMarket reads a MatrixMarket file from disk.
func ReadMatrixMarket(path string) (*Matrix, error) { return matrix.ReadFile(path) }

// WriteMatrixMarket writes a matrix to disk in MatrixMarket format.
func WriteMatrixMarket(path string, m *Matrix) error { return matrix.WriteFile(path, m) }

// ScaledMachine returns the scaled-down experiment machine (default), and
// PaperMachine the paper's 24-core Skylake constants.
func ScaledMachine() Machine { return machine.Scaled() }

// PaperMachine returns the paper's evaluation machine model.
func PaperMachine() Machine { return machine.Skylake24() }

// ModelSpace enumerates the 29 {method, parameter} combinations of the
// paper's Section 4.3 for a machine.
func ModelSpace(m Machine) []Method { return kernels.ModelSpace(m) }

// BuildFormat constructs the executable layout for any method.
func BuildFormat(m *Matrix, method Method, mach Machine) Format {
	return kernels.Build(m, method, mach.RowBlock)
}

// ExtractFeatures computes the WISE feature vector of a matrix with the
// default tiling.
func ExtractFeatures(m *Matrix) Features {
	return features.Extract(m, features.DefaultConfig())
}

// DefaultCorpusConfig returns the scaled default training corpus
// configuration; FullCorpusConfig approximates the paper's corpus shape.
func DefaultCorpusConfig() CorpusConfig { return gen.DefaultCorpusConfig() }

// FullCorpusConfig approximates the paper's 1,462-matrix corpus at scale.
func FullCorpusConfig() CorpusConfig { return gen.FullCorpusConfig() }

// GenerateCorpus generates the science-like + RMAT/RGG training corpus.
func GenerateCorpus(cfg CorpusConfig) []LabeledMatrix { return gen.Corpus(cfg) }

// Config bundles the training hyperparameters.
type Config struct {
	Machine  Machine
	FeatureK int // tiling factor (paper: 2048; scaled default: 64)
	Tree     ml.TreeConfig
	Workers  int // parallel labeling workers; 0 = GOMAXPROCS
}

// DefaultConfig returns the paper's hyperparameters on the scaled machine.
func DefaultConfig() Config {
	return Config{
		Machine:  machine.Scaled(),
		FeatureK: features.DefaultConfig().K,
		Tree:     ml.DefaultTreeConfig(),
	}
}

// Framework is a trained WISE instance.
type Framework struct {
	inner  *core.WISE
	labels []perf.MatrixLabels
	corpus []LabeledMatrix
	cfg    Config
}

// Train labels the corpus with the cost model and fits one decision tree
// per {method, parameter} combination.
func Train(corpus []LabeledMatrix, cfg Config) (*Framework, error) {
	fcfg := features.Config{K: cfg.FeatureK}
	labels := perf.LabelCorpus(perf.LabelConfig{
		Estimator: costmodel.New(cfg.Machine),
		Space:     kernels.ModelSpace(cfg.Machine),
		Features:  fcfg,
		Workers:   cfg.Workers,
	}, corpus)
	w, err := core.Train(labels, cfg.Tree, fcfg, cfg.Machine)
	if err != nil {
		return nil, err
	}
	return &Framework{inner: w, labels: labels, corpus: corpus, cfg: cfg}, nil
}

// ExtensionMethods returns extra {method, parameter} combinations beyond the
// paper's 29-model grid (currently the Cagra-style cache-blocked SegCSR),
// sized for the machine's LLC.
func ExtensionMethods(mach Machine) []Method {
	return kernels.ExtensionMethods(mach.LLCDoubles())
}

// Extend labels the training corpus for one new method and adds its
// performance model, leaving every existing model untouched — the paper's
// Section 7 extensibility property. Only frameworks created by Train (which
// retain their corpus) can be extended; loaded frameworks cannot.
func (f *Framework) Extend(method Method) error {
	if f.corpus == nil {
		return fmt.Errorf("wise: cannot extend a framework without its training corpus (loaded from disk?)")
	}
	lcfg := perf.LabelConfig{
		Estimator: costmodel.New(f.cfg.Machine),
		Space:     kernels.ModelSpace(f.cfg.Machine),
		Features:  features.Config{K: f.cfg.FeatureK},
	}
	extended := perf.ExtendLabels(lcfg, f.corpus, f.labels, method)
	if err := f.inner.Extend(extended, method, f.cfg.Tree); err != nil {
		return err
	}
	f.labels = extended
	return nil
}

// Select extracts features and picks the best method for the matrix.
func (f *Framework) Select(m *Matrix) Selection { return f.inner.Select(m) }

// Prepare selects a method and builds its executable format (steps 1-4 of
// the paper's Figure 8).
func (f *Framework) Prepare(m *Matrix) (Selection, Format) { return f.inner.Prepare(m) }

// Multiply selects, transforms, and runs y = A*x with the chosen method.
func (f *Framework) Multiply(y, x []float64, m *Matrix) Selection {
	return f.inner.Multiply(y, x, m)
}

// Save persists the trained models as JSON.
func (f *Framework) Save(path string) error { return f.inner.Save(path) }

// Evaluate reruns the paper's end-to-end protocol on the training corpus
// with k-fold cross-validation (out-of-fold selections).
func (f *Framework) Evaluate(folds int, seed int64) (EvalResult, error) {
	return core.Evaluate(f.labels, ml.DefaultTreeConfig(), folds, seed)
}

// Load restores a framework saved with Save. Evaluation requires labels and
// is unavailable on loaded frameworks; selection and multiplication work.
func Load(path string, mach Machine) (*Framework, error) {
	w, err := core.Load(path, mach)
	if err != nil {
		return nil, err
	}
	return &Framework{inner: w}, nil
}

// NewEstimator returns the deterministic cost model for a machine.
func NewEstimator(mach Machine) *Estimator { return costmodel.New(mach) }
